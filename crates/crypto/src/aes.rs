//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! Three bit-identical implementations live here:
//!
//! * The **hardware path** (AES-NI on x86-64, selected by a one-time
//!   CPUID probe at key-schedule time) — one `aesenc`/`aesdec` per
//!   round; [`Aes128::encrypt_blocks4`] pipelines four independent
//!   blocks (the CTR pad shape) through the AES units.
//! * The **T-table path** ([`Aes128::encrypt_block_table`] /
//!   [`Aes128::decrypt_block_table`]) — the portable fast path and the
//!   fallback when AES-NI is absent. SubBytes, ShiftRows and MixColumns
//!   fuse into four compile-time 256-entry `u32` tables per direction,
//!   so one round is 16 table lookups and 20 XORs on column words.
//!   Decryption uses the equivalent inverse cipher with InvMixColumns
//!   folded into the decryption round keys.
//! * The **byte-oriented reference path**
//!   ([`Aes128::encrypt_block_reference`] /
//!   [`Aes128::decrypt_block_reference`]) — the original straight-line
//!   FIPS-197 transcription (S-box lookups plus explicit `xtime`
//!   chains). It is kept callable so equivalence is provable by test and
//!   so the benchmark suite can report before/after speedups against it.
//!
//! [`Aes128::encrypt_block`] / [`Aes128::decrypt_block`] dispatch to the
//! fastest available path; the equivalence tests pin all paths to the
//! same bits on every machine they run on.
//!
//! Neither path is side-channel hardened (they model a hardware engine
//! inside a simulator), but both are bit-exact against the FIPS-197
//! vectors and against each other on random inputs.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::aes::Aes128;
//!
//! let cipher = Aes128::new([0u8; 16]);
//! let block = [0x42u8; 16];
//! let ct = cipher.encrypt_block(&block);
//! assert_eq!(cipher.decrypt_block(&ct), block);
//! ```

const NB: usize = 4; // columns in the state
const NR: usize = 10; // rounds for AES-128

/// The AES S-box.
static SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
static INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Round constants for key expansion.
static RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
const fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1).wrapping_mul(0x1b))
}

// Constant-multiplier xtime chains for the InvMixColumns coefficients.
// These replace `gmul(x, 0x09/0x0b/0x0d/0x0e)` in every fixed-coefficient
// position: 3 xtime steps and 1–2 XORs instead of an 8-iteration
// branch-per-bit loop.

#[inline]
const fn mul9(x: u8) -> u8 {
    // 9 = 8 + 1
    xtime(xtime(xtime(x))) ^ x
}

#[inline]
const fn mul11(x: u8) -> u8 {
    // 11 = 8 + 2 + 1
    xtime(xtime(xtime(x)) ^ x) ^ x
}

#[inline]
const fn mul13(x: u8) -> u8 {
    // 13 = 8 + 4 + 1
    xtime(xtime(xtime(x) ^ x)) ^ x
}

#[inline]
const fn mul14(x: u8) -> u8 {
    // 14 = 8 + 4 + 2
    xtime(xtime(xtime(x) ^ x) ^ x)
}

/// Multiply two bytes in GF(2^8) with the AES polynomial. Retained as
/// the first-principles reference for the table/chain tests; all
/// fixed-coefficient production paths use the `xtime` chains above or
/// the T-tables.
#[cfg(test)]
#[inline]
const fn gmul(a: u8, b: u8) -> u8 {
    let mut a = a;
    let mut b = b;
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

// ---------------------------------------------------------------------------
// T-tables
// ---------------------------------------------------------------------------
//
// Column words are little-endian: bits 0..8 hold the row-0 byte. With the
// MixColumns matrix rows (2 3 1 1 / 1 2 3 1 / 1 1 2 3 / 3 1 1 2), the
// contribution of the row-r input byte `x` (after SubBytes) to the output
// column is TE_r[x]:
//
//   TE0[x] = 2s |  s<<8  |  s<<16 | 3s<<24      (s = SBOX[x])
//   TE1[x] = 3s | 2s<<8  |  s<<16 |  s<<24
//   TE2[x] =  s | 3s<<8  | 2s<<16 |  s<<24
//   TE3[x] =  s |  s<<8  | 3s<<16 | 2s<<24
//
// The decryption tables fold InvSubBytes into InvMixColumns
// (coefficients 14 11 13 9) for the equivalent inverse cipher:
//
//   TD0[x] = 14u |  9u<<8 | 13u<<16 | 11u<<24   (u = INV_SBOX[x])
//   and rotations thereof.

const fn te_entry(s: u8, rot: u32) -> u32 {
    let e = (xtime(s) as u32)
        | ((s as u32) << 8)
        | ((s as u32) << 16)
        | (((xtime(s) ^ s) as u32) << 24);
    e.rotate_left(8 * rot)
}

const fn td_entry(u: u8, rot: u32) -> u32 {
    let e = (mul14(u) as u32)
        | ((mul9(u) as u32) << 8)
        | ((mul13(u) as u32) << 16)
        | ((mul11(u) as u32) << 24);
    e.rotate_left(8 * rot)
}

const fn build_te(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = te_entry(SBOX[i], rot);
        i += 1;
    }
    t
}

const fn build_td(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = td_entry(INV_SBOX[i], rot);
        i += 1;
    }
    t
}

static TE0: [u32; 256] = build_te(0);
static TE1: [u32; 256] = build_te(1);
static TE2: [u32; 256] = build_te(2);
static TE3: [u32; 256] = build_te(3);

static TD0: [u32; 256] = build_td(0);
static TD1: [u32; 256] = build_td(1);
static TD2: [u32; 256] = build_td(2);
static TD3: [u32; 256] = build_td(3);

/// One-time CPUID probe for hardware AES; `false` off x86-64.
fn aesni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("aes"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Hardware AES (AES-NI). Every function here requires the `aes` CPU
/// feature; callers gate on [`aesni_available`].
#[cfg(target_arch = "x86_64")]
mod ni {
    use core::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    use super::NR;

    // SAFETY: `_mm_loadu_si128` is an unaligned load, so the only
    // obligation is 16 readable bytes, guaranteed by `&[u8; 16]`; this
    // module is only entered after the `is_x86_feature_detected!("aes")`
    // probe in `super::aesni_available` succeeds.
    #[inline]
    unsafe fn load(bytes: &[u8; 16]) -> __m128i {
        // SAFETY: any 16-byte array is a valid unaligned load source.
        unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) }
    }

    // SAFETY: `_mm_storeu_si128` is an unaligned store into the 16
    // writable bytes of a local array; this module is only entered after
    // the `is_x86_feature_detected!("aes")` probe in
    // `super::aesni_available` succeeds.
    #[inline]
    unsafe fn store(v: __m128i) -> [u8; 16] {
        let mut out = [0u8; 16];
        // SAFETY: `out` is 16 writable bytes.
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
        out
    }

    /// # Safety
    ///
    /// The CPU must support AES-NI (see [`super::aesni_available`]).
    // SAFETY: unsafe solely for `#[target_feature(enable = "aes")]`;
    // every caller dispatches through the `is_x86_feature_detected!`
    // CPUID probe cached in `super::aesni_available` (`use_ni` flag).
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_block(
        round_keys: &[[u8; 16]; NR + 1],
        block: &[u8; 16],
    ) -> [u8; 16] {
        let mut b = _mm_xor_si128(load(block), load(&round_keys[0]));
        for rk in &round_keys[1..NR] {
            b = _mm_aesenc_si128(b, load(rk));
        }
        store(_mm_aesenclast_si128(b, load(&round_keys[NR])))
    }

    /// Four independent blocks interleaved: each round key is loaded
    /// once and the four `aesenc` chains overlap in the pipelined AES
    /// units instead of serializing.
    ///
    /// # Safety
    ///
    /// The CPU must support AES-NI (see [`super::aesni_available`]).
    // SAFETY: unsafe solely for `#[target_feature(enable = "aes")]`;
    // every caller dispatches through the `is_x86_feature_detected!`
    // CPUID probe cached in `super::aesni_available` (`use_ni` flag).
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks4(
        round_keys: &[[u8; 16]; NR + 1],
        blocks: &[[u8; 16]; 4],
    ) -> [[u8; 16]; 4] {
        let k0 = load(&round_keys[0]);
        let mut b: [__m128i; 4] = [
            _mm_xor_si128(load(&blocks[0]), k0),
            _mm_xor_si128(load(&blocks[1]), k0),
            _mm_xor_si128(load(&blocks[2]), k0),
            _mm_xor_si128(load(&blocks[3]), k0),
        ];
        for rk in &round_keys[1..NR] {
            let k = load(rk);
            b = [
                _mm_aesenc_si128(b[0], k),
                _mm_aesenc_si128(b[1], k),
                _mm_aesenc_si128(b[2], k),
                _mm_aesenc_si128(b[3], k),
            ];
        }
        let k = load(&round_keys[NR]);
        [
            store(_mm_aesenclast_si128(b[0], k)),
            store(_mm_aesenclast_si128(b[1], k)),
            store(_mm_aesenclast_si128(b[2], k)),
            store(_mm_aesenclast_si128(b[3], k)),
        ]
    }

    /// Eight independent blocks interleaved — two CTR-line pads in one
    /// call. Modern cores run 2+ `aesenc` ports with ~3-4 cycle latency,
    /// so eight parallel chains keep the units saturated where four
    /// leave bubbles.
    ///
    /// # Safety
    ///
    /// The CPU must support AES-NI (see [`super::aesni_available`]).
    // SAFETY: unsafe solely for `#[target_feature(enable = "aes")]`;
    // every caller dispatches through the `is_x86_feature_detected!`
    // CPUID probe cached in `super::aesni_available` (`use_ni` flag).
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn encrypt_blocks8(
        round_keys: &[[u8; 16]; NR + 1],
        blocks: &[[u8; 16]; 8],
    ) -> [[u8; 16]; 8] {
        let k0 = load(&round_keys[0]);
        let mut b: [__m128i; 8] = [
            _mm_xor_si128(load(&blocks[0]), k0),
            _mm_xor_si128(load(&blocks[1]), k0),
            _mm_xor_si128(load(&blocks[2]), k0),
            _mm_xor_si128(load(&blocks[3]), k0),
            _mm_xor_si128(load(&blocks[4]), k0),
            _mm_xor_si128(load(&blocks[5]), k0),
            _mm_xor_si128(load(&blocks[6]), k0),
            _mm_xor_si128(load(&blocks[7]), k0),
        ];
        for rk in &round_keys[1..NR] {
            let k = load(rk);
            for lane in &mut b {
                *lane = _mm_aesenc_si128(*lane, k);
            }
        }
        let k = load(&round_keys[NR]);
        core::array::from_fn(|i| store(_mm_aesenclast_si128(b[i], k)))
    }

    /// # Safety
    ///
    /// The CPU must support AES-NI (see [`super::aesni_available`]).
    /// `dec_round_keys` must be the equivalent-inverse schedule
    /// (InvMixColumns applied to the interior round keys) that `aesdec`
    /// consumes.
    // SAFETY: unsafe solely for `#[target_feature(enable = "aes")]`;
    // every caller dispatches through the `is_x86_feature_detected!`
    // CPUID probe cached in `super::aesni_available` (`use_ni` flag).
    #[target_feature(enable = "aes")]
    pub(super) unsafe fn decrypt_block(
        dec_round_keys: &[[u8; 16]; NR + 1],
        block: &[u8; 16],
    ) -> [u8; 16] {
        let mut b = _mm_xor_si128(load(block), load(&dec_round_keys[0]));
        for rk in &dec_round_keys[1..NR] {
            b = _mm_aesdec_si128(b, load(rk));
        }
        store(_mm_aesdeclast_si128(b, load(&dec_round_keys[NR])))
    }
}

/// An AES-128 cipher with a pre-expanded key schedule.
///
/// `new` pre-expands the byte-wise round keys (shared by both paths),
/// packs them into column words for the T-table encryptor, and applies
/// InvMixColumns to rounds 1..NR-1 for the equivalent-inverse decryptor.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; NR + 1],
    // Byte-wise equivalent-inverse schedule (what `aesdec` consumes);
    // `dec_keys` is the same schedule packed into column words.
    dec_round_keys: [[u8; 16]; NR + 1],
    enc_keys: [[u32; 4]; NR + 1],
    dec_keys: [[u32; 4]; NR + 1],
    use_ni: bool,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Aes128(..)")
    }
}

#[inline]
fn pack_words(rk: &[u8; 16]) -> [u32; 4] {
    core::array::from_fn(|c| soteria_rt::bytes::u32_le(&rk[4 * c..4 * c + 4]))
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; NB * (NR + 1)];
        for (i, word) in w.iter_mut().take(NB).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in NB..NB * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NB == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / NB - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - NB][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..NB {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[r * NB + c]);
            }
        }
        let enc_keys = core::array::from_fn(|r| pack_words(&round_keys[r]));
        // Equivalent inverse cipher: dec round r uses round key NR - r,
        // passed through InvMixColumns for the interior rounds.
        let mut dec_round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in dec_round_keys.iter_mut().enumerate() {
            *rk = round_keys[NR - r];
            if r != 0 && r != NR {
                inv_mix_columns(rk);
            }
        }
        let dec_keys = core::array::from_fn(|r| pack_words(&dec_round_keys[r]));
        Self {
            round_keys,
            dec_round_keys,
            enc_keys,
            dec_keys,
            use_ni: aesni_available(),
        }
    }

    /// Encrypts one 16-byte block on the fastest available path.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is set only after the CPUID probe in
            // `aesni_available` confirmed the AES extension.
            return unsafe { ni::encrypt_block(&self.round_keys, block) };
        }
        self.encrypt_block_table(block)
    }

    /// Decrypts one 16-byte block on the fastest available path.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: as in `encrypt_block`.
            return unsafe { ni::decrypt_block(&self.dec_round_keys, block) };
        }
        self.decrypt_block_table(block)
    }

    /// Encrypts four independent blocks — the shape of a 64-byte CTR
    /// pad. The hardware path interleaves them so the pipelined AES
    /// units overlap the rounds of all four blocks.
    pub fn encrypt_blocks4(&self, blocks: &[[u8; 16]; 4]) -> [[u8; 16]; 4] {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: as in `encrypt_block`.
            return unsafe { ni::encrypt_blocks4(&self.round_keys, blocks) };
        }
        core::array::from_fn(|i| self.encrypt_block_table(&blocks[i]))
    }

    /// Encrypts eight independent blocks — two 64-byte CTR pads per
    /// call, used by page re-encryption to batch the old- and
    /// new-counter keystreams through one hardware dispatch.
    pub fn encrypt_blocks8(&self, blocks: &[[u8; 16]; 8]) -> [[u8; 16]; 8] {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: as in `encrypt_block`.
            return unsafe { ni::encrypt_blocks8(&self.round_keys, blocks) };
        }
        core::array::from_fn(|i| self.encrypt_block_table(&blocks[i]))
    }

    /// Forces the portable T-table path regardless of CPU features, so
    /// tests can pin hardware output against the software paths.
    #[cfg(test)]
    fn force_software(mut self) -> Self {
        self.use_ni = false;
        self
    }

    /// Encrypts one 16-byte block (portable T-table path).
    pub fn encrypt_block_table(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.enc_keys;
        let mut c: [u32; 4] = core::array::from_fn(|i| {
            soteria_rt::bytes::u32_le(&block[4 * i..4 * i + 4]) ^ rk[0][i]
        });
        for k in &rk[1..NR] {
            c = [
                TE0[(c[0] & 0xff) as usize]
                    ^ TE1[((c[1] >> 8) & 0xff) as usize]
                    ^ TE2[((c[2] >> 16) & 0xff) as usize]
                    ^ TE3[(c[3] >> 24) as usize]
                    ^ k[0],
                TE0[(c[1] & 0xff) as usize]
                    ^ TE1[((c[2] >> 8) & 0xff) as usize]
                    ^ TE2[((c[3] >> 16) & 0xff) as usize]
                    ^ TE3[(c[0] >> 24) as usize]
                    ^ k[1],
                TE0[(c[2] & 0xff) as usize]
                    ^ TE1[((c[3] >> 8) & 0xff) as usize]
                    ^ TE2[((c[0] >> 16) & 0xff) as usize]
                    ^ TE3[(c[1] >> 24) as usize]
                    ^ k[2],
                TE0[(c[3] & 0xff) as usize]
                    ^ TE1[((c[0] >> 8) & 0xff) as usize]
                    ^ TE2[((c[1] >> 16) & 0xff) as usize]
                    ^ TE3[(c[2] >> 24) as usize]
                    ^ k[3],
            ];
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let k = &rk[NR];
        let out: [u32; 4] = [
            sub_word_shifted(c[0], c[1], c[2], c[3]) ^ k[0],
            sub_word_shifted(c[1], c[2], c[3], c[0]) ^ k[1],
            sub_word_shifted(c[2], c[3], c[0], c[1]) ^ k[2],
            sub_word_shifted(c[3], c[0], c[1], c[2]) ^ k[3],
        ];
        words_to_bytes(&out)
    }

    /// Decrypts one 16-byte block (portable T-table path, equivalent
    /// inverse cipher).
    pub fn decrypt_block_table(&self, block: &[u8; 16]) -> [u8; 16] {
        let rk = &self.dec_keys;
        let mut c: [u32; 4] = core::array::from_fn(|i| {
            soteria_rt::bytes::u32_le(&block[4 * i..4 * i + 4]) ^ rk[0][i]
        });
        for k in &rk[1..NR] {
            c = [
                TD0[(c[0] & 0xff) as usize]
                    ^ TD1[((c[3] >> 8) & 0xff) as usize]
                    ^ TD2[((c[2] >> 16) & 0xff) as usize]
                    ^ TD3[(c[1] >> 24) as usize]
                    ^ k[0],
                TD0[(c[1] & 0xff) as usize]
                    ^ TD1[((c[0] >> 8) & 0xff) as usize]
                    ^ TD2[((c[3] >> 16) & 0xff) as usize]
                    ^ TD3[(c[2] >> 24) as usize]
                    ^ k[1],
                TD0[(c[2] & 0xff) as usize]
                    ^ TD1[((c[1] >> 8) & 0xff) as usize]
                    ^ TD2[((c[0] >> 16) & 0xff) as usize]
                    ^ TD3[(c[3] >> 24) as usize]
                    ^ k[2],
                TD0[(c[3] & 0xff) as usize]
                    ^ TD1[((c[2] >> 8) & 0xff) as usize]
                    ^ TD2[((c[1] >> 16) & 0xff) as usize]
                    ^ TD3[(c[0] >> 24) as usize]
                    ^ k[3],
            ];
        }
        // Final round: InvSubBytes + InvShiftRows + AddRoundKey.
        let k = &rk[NR];
        let out: [u32; 4] = [
            inv_sub_word_shifted(c[0], c[3], c[2], c[1]) ^ k[0],
            inv_sub_word_shifted(c[1], c[0], c[3], c[2]) ^ k[1],
            inv_sub_word_shifted(c[2], c[1], c[0], c[3]) ^ k[2],
            inv_sub_word_shifted(c[3], c[2], c[1], c[0]) ^ k[3],
        ];
        words_to_bytes(&out)
    }

    /// Encrypts one block with the original byte-oriented FIPS-197
    /// transcription. Bit-identical to [`Aes128::encrypt_block`]; kept as
    /// the equivalence/benchmark reference.
    pub fn encrypt_block_reference(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[NR]);
        state
    }

    /// Decrypts one block with the byte-oriented reference path
    /// (bit-identical to [`Aes128::decrypt_block`]).
    pub fn decrypt_block_reference(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

/// Final-round helper: assembles an output column from the shifted-row
/// source columns `(a, b, c, d)` = rows 0..3 through the S-box.
#[inline]
fn sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    (SBOX[(a & 0xff) as usize] as u32)
        | ((SBOX[((b >> 8) & 0xff) as usize] as u32) << 8)
        | ((SBOX[((c >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[(d >> 24) as usize] as u32) << 24)
}

#[inline]
fn inv_sub_word_shifted(a: u32, b: u32, c: u32, d: u32) -> u32 {
    (INV_SBOX[(a & 0xff) as usize] as u32)
        | ((INV_SBOX[((b >> 8) & 0xff) as usize] as u32) << 8)
        | ((INV_SBOX[((c >> 16) & 0xff) as usize] as u32) << 16)
        | ((INV_SBOX[(d >> 24) as usize] as u32) << 24)
}

#[inline]
fn words_to_bytes(words: &[u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (c, w) in words.iter().enumerate() {
        out[4 * c..4 * c + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

// State layout: state[4*c + r] = byte at row r, column c (column-major as in
// FIPS-197's linear input ordering).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = mul14(col[0]) ^ mul11(col[1]) ^ mul13(col[2]) ^ mul9(col[3]);
        state[4 * c + 1] = mul9(col[0]) ^ mul14(col[1]) ^ mul11(col[2]) ^ mul13(col[3]);
        state[4 * c + 2] = mul13(col[0]) ^ mul9(col[1]) ^ mul14(col[2]) ^ mul11(col[3]);
        state[4 * c + 3] = mul11(col[0]) ^ mul13(col[1]) ^ mul9(col[2]) ^ mul14(col[3]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let cipher = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 AES-128 example vector.
        let cipher = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = cipher.encrypt_block(&pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(cipher.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_vectors_on_reference_path() {
        let cipher = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = cipher.encrypt_block_reference(&pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(cipher.decrypt_block_reference(&ct), pt);
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        // SP 800-38A F.1.1 ECB-AES128.Encrypt, all four blocks.
        let cipher = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (pt, ct) in cases {
            assert_eq!(cipher.encrypt_block(&hex16(pt)), hex16(ct));
        }
    }

    #[test]
    fn ttable_matches_reference_on_random_blocks() {
        // Equivalence proof: the dispatched path (hardware where the CPU
        // has it), the T-table path, and the byte-oriented reference must
        // agree bit-for-bit — both directions, chained blocks so
        // differences propagate.
        let mut key = [0x9cu8; 16];
        for trial in 0..32u8 {
            key[0] = trial.wrapping_mul(41);
            key[7] ^= trial;
            let cipher = Aes128::new(key);
            let mut block: [u8; 16] = core::array::from_fn(|i| (i as u8) ^ trial);
            for _ in 0..64 {
                let fast = cipher.encrypt_block(&block);
                assert_eq!(fast, cipher.encrypt_block_table(&block));
                assert_eq!(fast, cipher.encrypt_block_reference(&block));
                assert_eq!(
                    cipher.decrypt_block(&fast),
                    cipher.decrypt_block_reference(&fast)
                );
                assert_eq!(cipher.decrypt_block(&fast), cipher.decrypt_block_table(&fast));
                assert_eq!(cipher.decrypt_block(&fast), block);
                block = fast;
            }
        }
    }

    #[test]
    fn four_block_batch_matches_single_blocks_on_all_paths() {
        let cipher = Aes128::new([0x5d; 16]);
        let soft = cipher.clone().force_software();
        for trial in 0..16u8 {
            let blocks: [[u8; 16]; 4] = core::array::from_fn(|c| {
                core::array::from_fn(|i| (i as u8).wrapping_mul(29) ^ trial ^ (c as u8) << 6)
            });
            let batched = cipher.encrypt_blocks4(&blocks);
            for (c, b) in blocks.iter().enumerate() {
                assert_eq!(batched[c], cipher.encrypt_block(b));
                assert_eq!(batched[c], cipher.encrypt_block_reference(b));
            }
            // The forced-software cipher must produce the same bits the
            // dispatched (possibly hardware) cipher does.
            assert_eq!(soft.encrypt_blocks4(&blocks), batched);
        }
    }

    #[test]
    fn eight_block_batch_matches_single_blocks_on_all_paths() {
        let cipher = Aes128::new([0x3e; 16]);
        let soft = cipher.clone().force_software();
        for trial in 0..16u8 {
            let blocks: [[u8; 16]; 8] = core::array::from_fn(|c| {
                core::array::from_fn(|i| (i as u8).wrapping_mul(53) ^ trial ^ (c as u8) << 5)
            });
            let batched = cipher.encrypt_blocks8(&blocks);
            for (c, b) in blocks.iter().enumerate() {
                assert_eq!(batched[c], cipher.encrypt_block(b));
                assert_eq!(batched[c], cipher.encrypt_block_reference(b));
            }
            assert_eq!(soft.encrypt_blocks8(&blocks), batched);
        }
    }

    #[test]
    fn forced_software_matches_dispatched_paths() {
        let cipher = Aes128::new([0xa1; 16]);
        let soft = cipher.clone().force_software();
        let mut block = [0x11u8; 16];
        for _ in 0..32 {
            let ct = cipher.encrypt_block(&block);
            assert_eq!(ct, soft.encrypt_block(&block));
            assert_eq!(soft.decrypt_block(&ct), block);
            block = ct;
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_many() {
        let cipher = Aes128::new([0x37; 16]);
        let mut block = [0u8; 16];
        for i in 0..200u32 {
            block[0..4].copy_from_slice(&i.to_le_bytes());
            let ct = cipher.encrypt_block(&block);
            assert_eq!(cipher.decrypt_block(&ct), block);
            block = ct;
        }
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let a = Aes128::new([1; 16]);
        let b = Aes128::new([2; 16]);
        let pt = [0u8; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn gmul_matches_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn xtime_chains_match_gmul() {
        for x in 0..=255u8 {
            assert_eq!(mul9(x), gmul(x, 0x09), "x={x:#x}");
            assert_eq!(mul11(x), gmul(x, 0x0b), "x={x:#x}");
            assert_eq!(mul13(x), gmul(x, 0x0d), "x={x:#x}");
            assert_eq!(mul14(x), gmul(x, 0x0e), "x={x:#x}");
        }
    }

    #[test]
    fn te_td_tables_match_first_principles() {
        for x in 0..=255usize {
            let s = SBOX[x];
            let expect_te = (gmul(s, 2) as u32)
                | ((s as u32) << 8)
                | ((s as u32) << 16)
                | ((gmul(s, 3) as u32) << 24);
            assert_eq!(TE0[x], expect_te);
            assert_eq!(TE1[x], expect_te.rotate_left(8));
            assert_eq!(TE2[x], expect_te.rotate_left(16));
            assert_eq!(TE3[x], expect_te.rotate_left(24));
            let u = INV_SBOX[x];
            let expect_td = (gmul(u, 14) as u32)
                | ((gmul(u, 9) as u32) << 8)
                | ((gmul(u, 13) as u32) << 16)
                | ((gmul(u, 11) as u32) << 24);
            assert_eq!(TD0[x], expect_td);
            assert_eq!(TD1[x], expect_td.rotate_left(8));
            assert_eq!(TD2[x], expect_td.rotate_left(16));
            assert_eq!(TD3[x], expect_td.rotate_left(24));
        }
    }

    #[test]
    fn inv_sbox_is_inverse() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn shift_rows_round_trip() {
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = s;
        shift_rows(&mut s);
        assert_ne!(s, orig);
        inv_shift_rows(&mut s);
        assert_eq!(s, orig);
    }

    #[test]
    fn mix_columns_round_trip() {
        let mut s: [u8; 16] = core::array::from_fn(|i| (i * 17) as u8);
        let orig = s;
        mix_columns(&mut s);
        inv_mix_columns(&mut s);
        assert_eq!(s, orig);
    }
}
