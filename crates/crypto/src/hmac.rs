//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! # Example
//!
//! ```
//! use soteria_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes HMAC-SHA-256 over `message` with `key`.
///
/// Keys longer than the 64-byte SHA-256 block are hashed first, per the
/// HMAC specification.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut hmac = HmacSha256::new(key);
    hmac.update(message);
    hmac.finalize()
}

/// Incremental HMAC-SHA-256 computation.
///
/// Useful when a MAC covers several discontiguous fields (address, payload,
/// binding counter) without concatenating them into a scratch buffer.
///
/// Both the inner (`key ^ ipad`) and outer (`key ^ opad`) block are
/// compressed eagerly in [`HmacSha256::new`], so the struct holds two
/// SHA-256 **midstates**. Cloning a keyed instance therefore restarts a
/// MAC without redoing either key compression — [`crate::mac::MacEngine`]
/// relies on this to amortize the key schedule across millions of
/// per-line tags.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Starts a new HMAC computation with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK];
        let mut opad_key = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad_key[i] = k[i] ^ 0x36;
            opad_key[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        let mut outer = Sha256::new();
        outer.update(&opad_key);
        Self { inner, outer }
    }

    /// Feeds more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the computation and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Block-aligned fast path for the controller's fixed MAC shape: the
    /// tag over `header ∥ payload` (17 + 64 bytes).
    ///
    /// The 81-byte message lands on known block boundaries, so both inner
    /// padding blocks and the outer block are laid out directly on the
    /// stack and fed to three raw compressions from the cached midstates —
    /// no template clone, no streaming buffer, no per-call padding logic.
    /// Bit-identical to `clone` + [`HmacSha256::update`] +
    /// [`HmacSha256::finalize`] over the same bytes.
    pub fn tag_header64(&self, header: &[u8; 17], payload: &[u8; 64]) -> [u8; 32] {
        let use_ni = self.inner.uses_ni();

        // Inner hash: ipad block (already compressed into the midstate)
        // then 81 message bytes → one full block + one padded block.
        // Total inner input is 64 + 81 = 145 bytes = 1160 bits.
        let mut state = self.inner.block_aligned_state();
        let mut block = [0u8; 64];
        block[..17].copy_from_slice(header);
        block[17..].copy_from_slice(&payload[..47]);
        Sha256::compress_raw(&mut state, &block, use_ni);
        let mut tail = [0u8; 64];
        tail[..17].copy_from_slice(&payload[47..]);
        tail[17] = 0x80;
        tail[56..].copy_from_slice(&1160u64.to_be_bytes());
        Sha256::compress_raw(&mut state, &tail, use_ni);
        let inner_digest = Sha256::state_bytes(&state);

        // Outer hash: opad block (midstate) + 32 digest bytes = 96 bytes
        // = 768 bits, padded within a single block.
        let mut state = self.outer.block_aligned_state();
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&inner_digest);
        block[32] = 0x80;
        block[56..].copy_from_slice(&768u64.to_be_bytes());
        Sha256::compress_raw(&mut state, &block, use_ni);
        Sha256::state_bytes(&state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than one block must be hashed first.
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), hmac_sha256(b"k", b"hello world"));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"a", b"msg"), hmac_sha256(b"b", b"msg"));
    }

    #[test]
    fn tag_header64_matches_streaming() {
        let mut x = 0x452821e638d01377u64;
        let mut fill = |buf: &mut [u8]| {
            for b in buf.iter_mut() {
                x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(0x94d049bb133111eb);
                *b = (x >> 40) as u8;
            }
        };
        for key_len in [0usize, 1, 32, 64, 100] {
            let mut key = vec![0u8; key_len];
            fill(&mut key);
            let engine = HmacSha256::new(&key);
            for _ in 0..8 {
                let mut header = [0u8; 17];
                let mut payload = [0u8; 64];
                fill(&mut header);
                fill(&mut payload);
                let mut streaming = engine.clone();
                streaming.update(&header);
                streaming.update(&payload);
                assert_eq!(
                    engine.tag_header64(&header, &payload),
                    streaming.finalize(),
                    "key_len {key_len}"
                );
            }
        }
    }
}
