//! AES-GCM authenticated encryption (NIST SP 800-38D) — the engine the
//! paper's footnote 1 names for secure-memory MACs ("Authenticated
//! Encryption engines such as AES-GCM is typically used to ensure fast
//! encryption, decryption, and MAC calculation").
//!
//! GHASH multiplies in GF(2^128) with the polynomial
//! `x^128 + x^7 + x^2 + x + 1`; the tag binds ciphertext and additional
//! authenticated data (for secure memory: the line address and the
//! freshness counter travel in the IV/AAD). [`crate::mac::MacEngine`]
//! remains the default engine (HMAC-based); this module provides the
//! GCM-faithful alternative plus the standard test vectors.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::gcm::AesGcm;
//!
//! let gcm = AesGcm::new([0u8; 16]);
//! let nonce = [1u8; 12];
//! let (ct, tag) = gcm.seal(&nonce, b"address|counter", b"secret line");
//! let pt = gcm.open(&nonce, b"address|counter", &ct, &tag).expect("authentic");
//! assert_eq!(pt, b"secret line");
//! ```

use crate::aes::Aes128;

// Bit-reflected convention of SP 800-38D: bit 0 is the x^0
// coefficient when blocks are read MSB-first; R = 0xe1 || 0^120.
const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;

/// Multiplies two 128-bit blocks in GHASH's GF(2^128), one bit at a time.
///
/// This is the first-principles reference; the GHASH hot path uses the
/// Shoup 4-bit table method ([`AesGcm::gf128_mul_h`]) built from it.
fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z: u128 = 0;
    let mut v = y;
    for i in (0..128).rev() {
        if (x >> i) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Multiplies by the field generator α (a one-bit right shift with
/// reduction, in the reflected convention).
const fn mul_alpha(v: u128) -> u128 {
    let shifted = v >> 1;
    if v & 1 == 1 {
        shifted ^ R
    } else {
        shifted
    }
}

/// Reduction table for the Shoup 4-bit GHASH method: `RED[n] = n · α^4`
/// for the four low-order bits `n` that a 4-bit shift pushes out. Key
/// independent, so built at compile time.
static RED: [u128; 16] = {
    let mut table = [0u128; 16];
    let mut n = 0;
    while n < 16 {
        let mut v = n as u128;
        let mut step = 0;
        while step < 4 {
            v = mul_alpha(v);
            step += 1;
        }
        table[n] = v;
        n += 1;
    }
    table
};

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(buf)
}

/// One-time CPUID probe for carry-less multiply; `false` off x86-64.
fn pclmul_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("pclmulqdq"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Folds a 256-bit carry-less product `(p_hi, p_lo)` of two reflected
/// GHASH operands back into GF(2^128).
///
/// In the reflected convention a u128 bit `j` holds the coefficient of
/// `t^(127-j)`, so integer-domain shifts swap direction and the 256-bit
/// product splits with a one-bit offset: after shifting the product left
/// one bit, `d_lo = p_lo << 1` is the reflected image of the *high*
/// (overflow) half `h` of the polynomial product and
/// `d_hi = (p_hi << 1) | (p_lo >> 127)` the image of the low half. The
/// overflow folds through `t^128 ≡ t^7 + t^2 + t + 1`: reflected,
/// `h·(1 + t + t^2 + t^7)` is `u ^ u>>1 ^ u>>2 ^ u>>7` with its own
/// 6-bit overflow `(u<<126) ^ (u<<121)` folded the same way once more
/// (deg h ≤ 126, so two folds terminate). Plain u128 ops — only the
/// 64×64 products themselves need the PCLMULQDQ intrinsic.
fn clmul_reduce(p_hi: u128, p_lo: u128) -> u128 {
    let d_hi = (p_hi << 1) | (p_lo >> 127);
    let u = p_lo << 1;
    let fold1 = u ^ (u >> 1) ^ (u >> 2) ^ (u >> 7);
    let o = (u << 126) ^ (u << 121);
    let fold2 = o ^ (o >> 1) ^ (o >> 2) ^ (o >> 7);
    d_hi ^ fold1 ^ fold2
}

/// Hardware carry-less multiply (PCLMULQDQ). Every function here
/// requires the `pclmulqdq` CPU feature; callers gate on
/// [`pclmul_available`].
#[cfg(target_arch = "x86_64")]
mod clmul {
    use core::arch::x86_64::{
        __m128i, _mm_clmulepi64_si128, _mm_set_epi64x, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Extracts a `__m128i` into a `u128` (low lane = low 64 bits).
    #[inline]
    fn to_u128(v: __m128i) -> u128 {
        let mut out = [0u8; 16];
        // SAFETY: `_mm_storeu_si128` is an unaligned store into the 16
        // writable bytes of a local array (SSE2, baseline on x86-64).
        unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
        u128::from_le_bytes(out)
    }

    /// 256-bit carry-less product of `x` and `y` as `(high, low)` u128s
    /// (schoolbook: four 64×64 PCLMULQDQ products).
    /// # Safety
    ///
    /// The CPU must support PCLMULQDQ (see [`super::pclmul_available`]).
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::pclmul_available` (`use_clmul` flag).
    #[inline]
    #[target_feature(enable = "pclmulqdq")]
    unsafe fn clmul256(x: u128, y: u128) -> (u128, u128) {
        let xv = _mm_set_epi64x((x >> 64) as u64 as i64, x as u64 as i64);
        let yv = _mm_set_epi64x((y >> 64) as u64 as i64, y as u64 as i64);
        let lo = _mm_clmulepi64_si128(xv, yv, 0x00);
        let hi = _mm_clmulepi64_si128(xv, yv, 0x11);
        let mid = _mm_xor_si128(
            _mm_clmulepi64_si128(xv, yv, 0x10),
            _mm_clmulepi64_si128(xv, yv, 0x01),
        );
        let mid = to_u128(mid);
        (to_u128(hi) ^ (mid >> 64), to_u128(lo) ^ (mid << 64))
    }

    /// GHASH multiply `x · h` (one product, one reduction).
    /// # Safety
    ///
    /// The CPU must support PCLMULQDQ (see [`super::pclmul_available`]).
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::pclmul_available` (`use_clmul` flag).
    #[target_feature(enable = "pclmulqdq")]
    pub(super) unsafe fn mul(x: u128, h: u128) -> u128 {
        let (p_hi, p_lo) = clmul256(x, h);
        super::clmul_reduce(p_hi, p_lo)
    }

    /// Aggregated four-block GHASH step: computes
    /// `x0·H^4 ^ x1·H^3 ^ x2·H^2 ^ x3·H` with the four 256-bit products
    /// XORed before a single reduction — exact in GF(2^128), so
    /// bit-identical to four serial Horner steps.
    /// # Safety
    ///
    /// The CPU must support PCLMULQDQ (see [`super::pclmul_available`]).
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::pclmul_available` (`use_clmul` flag).
    #[target_feature(enable = "pclmulqdq")]
    pub(super) unsafe fn mul4(x0: u128, x1: u128, x2: u128, x3: u128, hpow: &[u128; 4]) -> u128 {
        let (a_hi, a_lo) = clmul256(x0, hpow[3]);
        let (b_hi, b_lo) = clmul256(x1, hpow[2]);
        let (c_hi, c_lo) = clmul256(x2, hpow[1]);
        let (d_hi, d_lo) = clmul256(x3, hpow[0]);
        super::clmul_reduce(a_hi ^ b_hi ^ c_hi ^ d_hi, a_lo ^ b_lo ^ c_lo ^ d_lo)
    }
}

/// AES-128-GCM.
#[derive(Clone, Debug)]
pub struct AesGcm {
    aes: Aes128,
    // Hash subkey E_K(0): read by the PCLMUL path and by the
    // table-vs-reference equivalence tests.
    h: u128,
    // Shoup table: ht[n] = (n << 124) · H, one entry per 4-bit nibble
    // value. Built once per key; every GHASH block is then 32 table
    // lookups instead of a 128-iteration branchy loop. The portable
    // fallback when the CPU lacks PCLMULQDQ.
    ht: [u128; 16],
    // Per-key powers [H, H^2, H^3, H^4], hoisted at construction for the
    // PCLMUL path's aggregated four-block GHASH step.
    hpow: [u128; 4],
    use_clmul: bool,
}

impl AesGcm {
    /// Creates a GCM instance from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let h = u128::from_be_bytes(aes.encrypt_block(&[0u8; 16]));
        let ht = core::array::from_fn(|n| gf128_mul((n as u128) << 124, h));
        let h2 = gf128_mul(h, h);
        let hpow = [h, h2, gf128_mul(h2, h), gf128_mul(h2, h2)];
        Self {
            aes,
            h,
            ht,
            hpow,
            use_clmul: pclmul_available(),
        }
    }

    /// Disables the PCLMUL path on this instance (dispatch-off
    /// reference).
    pub fn force_software(mut self) -> Self {
        self.use_clmul = false;
        self
    }

    /// Multiplies `x` by the hash subkey `H` — PCLMULQDQ when the CPU has
    /// it, the Shoup table otherwise; bit-identical either way (and to
    /// `gf128_mul(x, H)`). Public as the per-block GHASH bench kernel.
    pub fn mul_h(&self, x: u128) -> u128 {
        #[cfg(target_arch = "x86_64")]
        if self.use_clmul {
            // SAFETY: `use_clmul` is set only after the CPUID probe in
            // `pclmul_available` confirmed the PCLMULQDQ extension.
            return unsafe { clmul::mul(x, self.h) };
        }
        self.mul_h_table(x)
    }

    /// Multiplies `x` by `H` using the 4-bit table method (bit-identical
    /// to `gf128_mul(x, self.h)`). Processes `x` lowest nibble first;
    /// each step multiplies the accumulator by α^4 via the compile-time
    /// `RED` table and folds in the next nibble's precomputed product.
    /// Public as the portable reference for the PCLMUL path.
    pub fn mul_h_table(&self, x: u128) -> u128 {
        let mut z: u128 = 0;
        let mut x = x;
        for _ in 0..32 {
            z = (z >> 4) ^ RED[(z & 0xf) as usize];
            z ^= self.ht[(x & 0xf) as usize];
            x >>= 4;
        }
        z
    }

    /// Absorbs `data` into the GHASH accumulator `y` (zero-padded
    /// 16-byte blocks). The PCLMUL path aggregates four blocks per
    /// reduction through the hoisted `hpow` powers; field arithmetic is
    /// exact, so the aggregated form is bit-identical to the serial
    /// Horner loop.
    fn ghash_update(&self, mut y: u128, data: &[u8]) -> u128 {
        #[cfg(target_arch = "x86_64")]
        if self.use_clmul {
            let mut quads = data.chunks_exact(64);
            for quad in &mut quads {
                let c0 = block_to_u128(&quad[0..16]);
                let c1 = block_to_u128(&quad[16..32]);
                let c2 = block_to_u128(&quad[32..48]);
                let c3 = block_to_u128(&quad[48..64]);
                // SAFETY: `use_clmul` is set only after the CPUID probe
                // in `pclmul_available` confirmed the PCLMULQDQ extension.
                y = unsafe { clmul::mul4(y ^ c0, c1, c2, c3, &self.hpow) };
            }
            for chunk in quads.remainder().chunks(16) {
                y = self.mul_h(y ^ block_to_u128(chunk));
            }
            return y;
        }
        for chunk in data.chunks(16) {
            y = self.mul_h_table(y ^ block_to_u128(chunk));
        }
        y
    }

    fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let mut y = self.ghash_update(0, aad);
        y = self.ghash_update(y, ct);
        let lengths = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        self.mul_h(y ^ lengths)
    }

    fn counter_block(nonce: &[u8; 12], counter: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(nonce);
        block[12..].copy_from_slice(&counter.to_be_bytes());
        block
    }

    fn ctr_xor(&self, nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for (i, chunk) in data.chunks(16).enumerate() {
            let pad = self
                .aes
                .encrypt_block(&Self::counter_block(nonce, 2 + i as u32));
            out.extend(chunk.iter().zip(pad.iter()).map(|(d, p)| d ^ p));
        }
        out
    }

    /// Encrypts `plaintext` and authenticates it together with `aad`,
    /// returning (ciphertext, 128-bit tag).
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> (Vec<u8>, [u8; 16]) {
        let ciphertext = self.ctr_xor(nonce, plaintext);
        let s = self.ghash(aad, &ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(nonce, 1)));
        let tag = (s ^ e_j0).to_be_bytes();
        (ciphertext, tag)
    }

    /// Verifies and decrypts. Returns `None` on authentication failure
    /// (tampered ciphertext, AAD, nonce or tag).
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; 16],
    ) -> Option<Vec<u8>> {
        let s = self.ghash(aad, ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(nonce, 1)));
        let expected = (s ^ e_j0).to_be_bytes();
        if &expected != tag {
            return None;
        }
        Some(self.ctr_xor(nonce, ciphertext))
    }

    /// A 64-bit secure-memory tag over an encrypted 64-byte line, bound
    /// to the line address and its encryption counter (the GCM-faithful
    /// equivalent of [`crate::mac::MacEngine::data_mac`]; truncation to 64
    /// bits matches the paper's tag width and collision bound, §3.2.2).
    pub fn line_tag(&self, address: u64, ciphertext: &[u8; 64], counter: u64) -> u64 {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        nonce[8..12].copy_from_slice(&(address as u32).to_le_bytes());
        let aad = [address.to_le_bytes(), counter.to_le_bytes()].concat();
        let s = self.ghash(&aad, ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(&nonce, 1)));
        ((s ^ e_j0) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        // SP 800-38D test case 1: zero key, zero nonce, empty everything.
        let gcm = AesGcm::new([0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_test_case_2_single_block() {
        // Test case 2: zero key/nonce, one zero plaintext block.
        let gcm = AesGcm::new([0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn nist_test_case_3_four_blocks() {
        // Test case 3: the classic feffe992... vector.
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::new(key);
        let (ct, tag) = gcm.seal(&nonce, b"", &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    #[test]
    fn nist_test_case_4_with_aad() {
        // Test case 4: truncated plaintext + AAD.
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new(key);
        let (ct, tag) = gcm.seal(&nonce, &aad, &pt);
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        let back = gcm
            .open(&nonce, &aad, &ct, &tag.to_vec().try_into().unwrap())
            .unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn tamper_rejected() {
        let gcm = AesGcm::new([7u8; 16]);
        let nonce = [3u8; 12];
        let (mut ct, tag) = gcm.seal(&nonce, b"aad", b"payload");
        ct[0] ^= 1;
        assert!(gcm.open(&nonce, b"aad", &ct, &tag).is_none());
    }

    #[test]
    fn aad_is_bound() {
        let gcm = AesGcm::new([7u8; 16]);
        let nonce = [3u8; 12];
        let (ct, tag) = gcm.seal(&nonce, b"addr=64", b"payload");
        assert!(gcm.open(&nonce, b"addr=128", &ct, &tag).is_none());
        assert!(gcm.open(&nonce, b"addr=64", &ct, &tag).is_some());
    }

    #[test]
    fn line_tag_binds_address_and_counter() {
        let gcm = AesGcm::new([9u8; 16]);
        let line = [0x5au8; 64];
        let t = gcm.line_tag(64, &line, 7);
        assert_ne!(t, gcm.line_tag(128, &line, 7));
        assert_ne!(t, gcm.line_tag(64, &line, 8));
        assert_eq!(t, gcm.line_tag(64, &line, 7));
    }

    #[test]
    fn table_ghash_matches_bitwise_reference() {
        // Equivalence proof: the Shoup 4-bit path must equal the bitwise
        // gf128_mul for the instance's H on structured and pseudo-random
        // operands.
        let gcm = AesGcm::new([0x42u8; 16]);
        let mut x = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        for i in 0..200u32 {
            assert_eq!(gcm.mul_h_table(x), gf128_mul(x, gcm.h), "iter {i}");
            // xorshift-style scramble to vary every nibble.
            x ^= x << 13;
            x ^= x >> 61;
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d_0123_4567_89ab_cdefu128) ^ i as u128;
        }
        for x in [0u128, 1, 1 << 127, u128::MAX, R] {
            assert_eq!(gcm.mul_h_table(x), gf128_mul(x, gcm.h));
        }
    }

    #[test]
    fn clmul_matches_bitwise_reference() {
        // The dispatched multiply (PCLMUL where the CPU has it) must
        // equal the bitwise gf128_mul on structured and pseudo-random
        // operands; without PCLMULQDQ this pins the table path again.
        let gcm = AesGcm::new([0x42u8; 16]);
        let mut x = 0xdead_beef_0bad_cafe_1234_5678_9abc_def0u128;
        for i in 0..200u32 {
            assert_eq!(gcm.mul_h(x), gf128_mul(x, gcm.h), "iter {i}");
            x ^= x << 13;
            x ^= x >> 61;
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d_0123_4567_89ab_cdefu128) ^ i as u128;
        }
        for x in [0u128, 1, 1 << 127, u128::MAX, R] {
            assert_eq!(gcm.mul_h(x), gf128_mul(x, gcm.h));
        }
    }

    #[test]
    fn hpow_matches_repeated_multiplication() {
        let gcm = AesGcm::new([0x42u8; 16]);
        let mut p = gcm.h;
        for (i, &hp) in gcm.hpow.iter().enumerate() {
            assert_eq!(hp, p, "H^{}", i + 1);
            p = gf128_mul(p, gcm.h);
        }
    }

    #[test]
    fn aggregated_ghash_matches_serial() {
        // seal/line_tag on the dispatched instance (four-block aggregated
        // PCLMUL path) vs the same key forced through the serial Shoup
        // table — tags and ciphertext must be byte-identical, across
        // lengths that hit the 64-byte aggregation boundary and every
        // remainder shape.
        let fast = AesGcm::new([0x5cu8; 16]);
        let slow = AesGcm::new([0x5cu8; 16]).force_software();
        let data: Vec<u8> = (0..200u32).map(|i| (i.wrapping_mul(131) % 256) as u8).collect();
        let nonce = [0xa7u8; 12];
        for len in [0, 1, 15, 16, 17, 48, 63, 64, 65, 128, 130, 192, 200] {
            let (ct_f, tag_f) = fast.seal(&nonce, &data[..len / 2], &data[..len]);
            let (ct_s, tag_s) = slow.seal(&nonce, &data[..len / 2], &data[..len]);
            assert_eq!(ct_f, ct_s, "len {len}");
            assert_eq!(tag_f, tag_s, "len {len}");
        }
        let mut line = [0u8; 64];
        line.copy_from_slice(&data[..64]);
        assert_eq!(fast.line_tag(0x40, &line, 9), slow.line_tag(0x40, &line, 9));
    }

    #[test]
    fn red_table_matches_alpha_powers() {
        for n in 0..16u128 {
            let mut v = n;
            for _ in 0..4 {
                v = mul_alpha(v);
            }
            assert_eq!(RED[n as usize], v);
            // And against the bitwise multiply: α^4 is (1 << 123) in the
            // reflected convention (bit 127 is α^0).
            assert_eq!(RED[n as usize], gf128_mul(n, 1u128 << 123));
        }
    }

    #[test]
    fn gf128_mul_properties() {
        let a = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        let b = 0xfedc_ba98_7654_3210_8899_aabb_ccdd_eeffu128;
        let c = 0x0f0f_f0f0_1234_5678_9abc_def0_1357_9bdfu128;
        // Commutative, distributive over XOR.
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
        assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
        // Multiplication by the MSB-first "one" (x^0 coefficient set).
        let one = 1u128 << 127;
        assert_eq!(gf128_mul(a, one), a);
    }
}
