//! AES-GCM authenticated encryption (NIST SP 800-38D) — the engine the
//! paper's footnote 1 names for secure-memory MACs ("Authenticated
//! Encryption engines such as AES-GCM is typically used to ensure fast
//! encryption, decryption, and MAC calculation").
//!
//! GHASH multiplies in GF(2^128) with the polynomial
//! `x^128 + x^7 + x^2 + x + 1`; the tag binds ciphertext and additional
//! authenticated data (for secure memory: the line address and the
//! freshness counter travel in the IV/AAD). [`crate::mac::MacEngine`]
//! remains the default engine (HMAC-based); this module provides the
//! GCM-faithful alternative plus the standard test vectors.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::gcm::AesGcm;
//!
//! let gcm = AesGcm::new([0u8; 16]);
//! let nonce = [1u8; 12];
//! let (ct, tag) = gcm.seal(&nonce, b"address|counter", b"secret line");
//! let pt = gcm.open(&nonce, b"address|counter", &ct, &tag).expect("authentic");
//! assert_eq!(pt, b"secret line");
//! ```

use crate::aes::Aes128;

// Bit-reflected convention of SP 800-38D: bit 0 is the x^0
// coefficient when blocks are read MSB-first; R = 0xe1 || 0^120.
const R: u128 = 0xe100_0000_0000_0000_0000_0000_0000_0000;

/// Multiplies two 128-bit blocks in GHASH's GF(2^128), one bit at a time.
///
/// This is the first-principles reference; the GHASH hot path uses the
/// Shoup 4-bit table method ([`AesGcm::gf128_mul_h`]) built from it.
fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z: u128 = 0;
    let mut v = y;
    for i in (0..128).rev() {
        if (x >> i) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Multiplies by the field generator α (a one-bit right shift with
/// reduction, in the reflected convention).
const fn mul_alpha(v: u128) -> u128 {
    let shifted = v >> 1;
    if v & 1 == 1 {
        shifted ^ R
    } else {
        shifted
    }
}

/// Reduction table for the Shoup 4-bit GHASH method: `RED[n] = n · α^4`
/// for the four low-order bits `n` that a 4-bit shift pushes out. Key
/// independent, so built at compile time.
static RED: [u128; 16] = {
    let mut table = [0u128; 16];
    let mut n = 0;
    while n < 16 {
        let mut v = n as u128;
        let mut step = 0;
        while step < 4 {
            v = mul_alpha(v);
            step += 1;
        }
        table[n] = v;
        n += 1;
    }
    table
};

fn block_to_u128(b: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..b.len()].copy_from_slice(b);
    u128::from_be_bytes(buf)
}

/// AES-128-GCM.
#[derive(Clone, Debug)]
pub struct AesGcm {
    aes: Aes128,
    // Hash subkey E_K(0). The hot path only reads the derived `ht`
    // table; the raw subkey is kept for the table-vs-reference
    // equivalence tests.
    #[cfg_attr(not(test), allow(dead_code))]
    h: u128,
    // Shoup table: ht[n] = (n << 124) · H, one entry per 4-bit nibble
    // value. Built once per key; every GHASH block is then 32 table
    // lookups instead of a 128-iteration branchy loop.
    ht: [u128; 16],
}

impl AesGcm {
    /// Creates a GCM instance from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let h = u128::from_be_bytes(aes.encrypt_block(&[0u8; 16]));
        let ht = core::array::from_fn(|n| gf128_mul((n as u128) << 124, h));
        Self { aes, h, ht }
    }

    /// Multiplies `x` by the hash subkey `H` using the 4-bit table method
    /// (bit-identical to `gf128_mul(x, self.h)`). Processes `x` lowest
    /// nibble first; each step multiplies the accumulator by α^4 via the
    /// compile-time [`RED`] table and folds in the next nibble's
    /// precomputed product.
    fn gf128_mul_h(&self, x: u128) -> u128 {
        let mut z: u128 = 0;
        let mut x = x;
        for _ in 0..32 {
            z = (z >> 4) ^ RED[(z & 0xf) as usize];
            z ^= self.ht[(x & 0xf) as usize];
            x >>= 4;
        }
        z
    }

    fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let mut y: u128 = 0;
        for chunk in aad.chunks(16) {
            y = self.gf128_mul_h(y ^ block_to_u128(chunk));
        }
        for chunk in ct.chunks(16) {
            y = self.gf128_mul_h(y ^ block_to_u128(chunk));
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
        self.gf128_mul_h(y ^ lengths)
    }

    fn counter_block(nonce: &[u8; 12], counter: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(nonce);
        block[12..].copy_from_slice(&counter.to_be_bytes());
        block
    }

    fn ctr_xor(&self, nonce: &[u8; 12], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for (i, chunk) in data.chunks(16).enumerate() {
            let pad = self
                .aes
                .encrypt_block(&Self::counter_block(nonce, 2 + i as u32));
            out.extend(chunk.iter().zip(pad.iter()).map(|(d, p)| d ^ p));
        }
        out
    }

    /// Encrypts `plaintext` and authenticates it together with `aad`,
    /// returning (ciphertext, 128-bit tag).
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> (Vec<u8>, [u8; 16]) {
        let ciphertext = self.ctr_xor(nonce, plaintext);
        let s = self.ghash(aad, &ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(nonce, 1)));
        let tag = (s ^ e_j0).to_be_bytes();
        (ciphertext, tag)
    }

    /// Verifies and decrypts. Returns `None` on authentication failure
    /// (tampered ciphertext, AAD, nonce or tag).
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; 16],
    ) -> Option<Vec<u8>> {
        let s = self.ghash(aad, ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(nonce, 1)));
        let expected = (s ^ e_j0).to_be_bytes();
        if &expected != tag {
            return None;
        }
        Some(self.ctr_xor(nonce, ciphertext))
    }

    /// A 64-bit secure-memory tag over an encrypted 64-byte line, bound
    /// to the line address and its encryption counter (the GCM-faithful
    /// equivalent of [`crate::mac::MacEngine::data_mac`]; truncation to 64
    /// bits matches the paper's tag width and collision bound, §3.2.2).
    pub fn line_tag(&self, address: u64, ciphertext: &[u8; 64], counter: u64) -> u64 {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&counter.to_le_bytes());
        nonce[8..12].copy_from_slice(&(address as u32).to_le_bytes());
        let aad = [address.to_le_bytes(), counter.to_le_bytes()].concat();
        let s = self.ghash(&aad, ciphertext);
        let e_j0 = u128::from_be_bytes(self.aes.encrypt_block(&Self::counter_block(&nonce, 1)));
        ((s ^ e_j0) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_test_case_1_empty() {
        // SP 800-38D test case 1: zero key, zero nonce, empty everything.
        let gcm = AesGcm::new([0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    #[test]
    fn nist_test_case_2_single_block() {
        // Test case 2: zero key/nonce, one zero plaintext block.
        let gcm = AesGcm::new([0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(ct, hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn nist_test_case_3_four_blocks() {
        // Test case 3: the classic feffe992... vector.
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm::new(key);
        let (ct, tag) = gcm.seal(&nonce, b"", &pt);
        assert_eq!(
            ct,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    #[test]
    fn nist_test_case_4_with_aad() {
        // Test case 4: truncated plaintext + AAD.
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let gcm = AesGcm::new(key);
        let (ct, tag) = gcm.seal(&nonce, &aad, &pt);
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        let back = gcm
            .open(&nonce, &aad, &ct, &tag.to_vec().try_into().unwrap())
            .unwrap();
        assert_eq!(back, pt);
    }

    #[test]
    fn tamper_rejected() {
        let gcm = AesGcm::new([7u8; 16]);
        let nonce = [3u8; 12];
        let (mut ct, tag) = gcm.seal(&nonce, b"aad", b"payload");
        ct[0] ^= 1;
        assert!(gcm.open(&nonce, b"aad", &ct, &tag).is_none());
    }

    #[test]
    fn aad_is_bound() {
        let gcm = AesGcm::new([7u8; 16]);
        let nonce = [3u8; 12];
        let (ct, tag) = gcm.seal(&nonce, b"addr=64", b"payload");
        assert!(gcm.open(&nonce, b"addr=128", &ct, &tag).is_none());
        assert!(gcm.open(&nonce, b"addr=64", &ct, &tag).is_some());
    }

    #[test]
    fn line_tag_binds_address_and_counter() {
        let gcm = AesGcm::new([9u8; 16]);
        let line = [0x5au8; 64];
        let t = gcm.line_tag(64, &line, 7);
        assert_ne!(t, gcm.line_tag(128, &line, 7));
        assert_ne!(t, gcm.line_tag(64, &line, 8));
        assert_eq!(t, gcm.line_tag(64, &line, 7));
    }

    #[test]
    fn table_ghash_matches_bitwise_reference() {
        // Equivalence proof: the Shoup 4-bit path must equal the bitwise
        // gf128_mul for the instance's H on structured and pseudo-random
        // operands.
        let gcm = AesGcm::new([0x42u8; 16]);
        let mut x = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        for i in 0..200u32 {
            assert_eq!(gcm.gf128_mul_h(x), gf128_mul(x, gcm.h), "iter {i}");
            // xorshift-style scramble to vary every nibble.
            x ^= x << 13;
            x ^= x >> 61;
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d_0123_4567_89ab_cdefu128) ^ i as u128;
        }
        for x in [0u128, 1, 1 << 127, u128::MAX, R] {
            assert_eq!(gcm.gf128_mul_h(x), gf128_mul(x, gcm.h));
        }
    }

    #[test]
    fn red_table_matches_alpha_powers() {
        for n in 0..16u128 {
            let mut v = n;
            for _ in 0..4 {
                v = mul_alpha(v);
            }
            assert_eq!(RED[n as usize], v);
            // And against the bitwise multiply: α^4 is (1 << 123) in the
            // reflected convention (bit 127 is α^0).
            assert_eq!(RED[n as usize], gf128_mul(n, 1u128 << 123));
        }
    }

    #[test]
    fn gf128_mul_properties() {
        let a = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        let b = 0xfedc_ba98_7654_3210_8899_aabb_ccdd_eeffu128;
        let c = 0x0f0f_f0f0_1234_5678_9abc_def0_1357_9bdfu128;
        // Commutative, distributive over XOR.
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
        assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
        // Multiplication by the MSB-first "one" (x^0 coefficient set).
        let one = 1u128 << 127;
        assert_eq!(gf128_mul(a, one), a);
    }
}
