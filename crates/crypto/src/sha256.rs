//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used as the compression primitive behind [`crate::hmac`] and therefore
//! behind every MAC in the secure-memory model.
//!
//! Two bit-identical compression paths share the FIPS-180 framing code:
//! the portable scalar schedule/rounds loop, and a SHA-NI path
//! (`_mm_sha256rnds2_epu32` / `_mm_sha256msg{1,2}_epu32`) selected at
//! construction by a one-time CPUID probe — the same runtime-dispatch
//! pattern as the AES-NI paths in [`crate::aes`].
//!
//! # Example
//!
//! ```
//! use soteria_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//! ```

/// SHA-256 round constants.
static K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One-time CPUID probe for the SHA extensions; `false` off x86-64.
///
/// The SHA-NI compression also uses SSSE3 (`_mm_shuffle_epi8`,
/// `_mm_alignr_epi8`) and SSE4.1 (`_mm_blend_epi16`), so all three
/// features gate the fast path together.
fn shani_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Hardware SHA-256 (SHA-NI). Every function here requires the `sha`,
/// `ssse3`, and `sse4.1` CPU features; callers gate on
/// [`shani_available`].
#[cfg(target_arch = "x86_64")]
mod ni {
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128,
        _mm_set_epi64x, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32,
        _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };

    use super::K;

    /// Four message-schedule words `w[4i..4i+4]` from the previous four
    /// vectors (`_mm_sha256msg1/msg2` plus the `w[t-7]` alignr term).
    /// # Safety
    ///
    /// The CPU must support SHA-NI (see [`super::shani_available`]).
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::shani_available` (`use_ni` flag).
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn schedule(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> __m128i {
        let t1 = _mm_sha256msg1_epu32(v0, v1);
        let t2 = _mm_alignr_epi8(v3, v2, 4);
        let t3 = _mm_add_epi32(t1, t2);
        _mm_sha256msg2_epu32(t3, v3)
    }

    /// Four SHA-256 rounds over the schedule vector `w` with round
    /// constants `K[4i..4i+4]`; returns the updated `(abef, cdgh)` state.
    /// # Safety
    ///
    /// The CPU must support SHA-NI (see [`super::shani_available`]), and
    /// `i <= 15` so the 16-byte load at `K[4i]` stays in bounds.
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::shani_available` (`use_ni` flag).
    #[inline]
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    unsafe fn rounds4(abef: __m128i, cdgh: __m128i, w: __m128i, i: usize) -> (__m128i, __m128i) {
        debug_assert!(i <= 15);
        // SAFETY: `K` holds 64 u32s and `i <= 15`, so the unaligned
        // 16-byte load at word offset `4i` reads `K[4i..4i+4]` in bounds.
        let kv = unsafe { _mm_loadu_si128(K.as_ptr().add(4 * i).cast()) };
        let t1 = _mm_add_epi32(w, kv);
        let cdgh = _mm_sha256rnds2_epu32(cdgh, abef, t1);
        let t2 = _mm_shuffle_epi32(t1, 0x0E);
        let abef = _mm_sha256rnds2_epu32(abef, cdgh, t2);
        (abef, cdgh)
    }

    /// One SHA-256 compression, bit-identical to the portable loop.
    /// # Safety
    ///
    /// The CPU must support SHA-NI (see [`super::shani_available`]).
    // SAFETY: unsafe solely for `#[target_feature]`; every caller
    // dispatches through the `is_x86_feature_detected!` CPUID probe
    // cached in `super::shani_available` (`use_ni` flag).
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(super) unsafe fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // Big-endian 32-bit loads: byte-swap each u32 lane.
        let mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0bu64 as i64, 0x0405_0607_0001_0203u64 as i64);

        // SAFETY: `state` is 8 readable u32s — two unaligned 16-byte
        // loads at word offsets 0 and 4 stay in bounds.
        let dcba = unsafe { _mm_loadu_si128(state.as_ptr().cast()) };
        // SAFETY: as above (words 4..8).
        let hgfe = unsafe { _mm_loadu_si128(state.as_ptr().add(4).cast()) };
        // Rearrange [a,b,c,d]/[e,f,g,h] into the abef/cdgh lane order the
        // sha256rnds2 instruction expects.
        let cdab = _mm_shuffle_epi32(dcba, 0xB1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xF0);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // SAFETY: `block` is 64 readable bytes — four unaligned 16-byte
        // loads at byte offsets 0/16/32/48 stay in bounds.
        let (r0, r1, r2, r3) = unsafe {
            (
                _mm_loadu_si128(block.as_ptr().cast()),
                _mm_loadu_si128(block.as_ptr().add(16).cast()),
                _mm_loadu_si128(block.as_ptr().add(32).cast()),
                _mm_loadu_si128(block.as_ptr().add(48).cast()),
            )
        };
        let w0 = _mm_shuffle_epi8(r0, mask);
        let w1 = _mm_shuffle_epi8(r1, mask);
        let w2 = _mm_shuffle_epi8(r2, mask);
        let w3 = _mm_shuffle_epi8(r3, mask);

        // 16 groups of 4 rounds: the first four consume the message words
        // directly; the remaining twelve extend the schedule through the
        // five-vector rotation (group i builds w[4i..4i+4] from the
        // previous four vectors and round-mixes it in the same step).
        let mut w = [w0, w1, w2, w3, w0];
        (abef, cdgh) = rounds4(abef, cdgh, w0, 0);
        (abef, cdgh) = rounds4(abef, cdgh, w1, 1);
        (abef, cdgh) = rounds4(abef, cdgh, w2, 2);
        (abef, cdgh) = rounds4(abef, cdgh, w3, 3);
        for i in 4..16 {
            let b = (i - 4) % 5;
            let next = schedule(w[b], w[(b + 1) % 5], w[(b + 2) % 5], w[(b + 3) % 5]);
            w[(b + 4) % 5] = next;
            (abef, cdgh) = rounds4(abef, cdgh, next, i);
        }
        let feba = _mm_shuffle_epi32(_mm_add_epi32(abef, abef_save), 0x1B);
        let dchg = _mm_shuffle_epi32(_mm_add_epi32(cdgh, cdgh_save), 0xB1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xF0);
        let hgef = _mm_alignr_epi8(dchg, feba, 8);
        // SAFETY: `state` is 8 writable u32s — two unaligned 16-byte
        // stores at word offsets 0 and 4 stay in bounds.
        unsafe { _mm_storeu_si128(state.as_mut_ptr().cast(), dcba) };
        // SAFETY: as above (words 4..8).
        unsafe { _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hgef) };
    }
}

/// An incremental SHA-256 hasher.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
    use_ni: bool,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
            use_ni: shani_available(),
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest of exactly one 64-byte block.
    ///
    /// For a 64-byte message the Merkle-Damgård padding block is a
    /// constant (`0x80`, zeros, bit length 512), so the digest is two
    /// straight-line compressions with no buffering — the shape of every
    /// shadow-table leaf hash. Bit-identical to [`Sha256::digest`].
    pub fn digest64(data: &[u8; 64]) -> [u8; 32] {
        let mut pad = [0u8; 64];
        pad[0] = 0x80;
        pad[56..64].copy_from_slice(&512u64.to_be_bytes());
        let mut state = H0;
        let use_ni = shani_available();
        Self::compress_raw(&mut state, data, use_ni);
        Self::compress_raw(&mut state, &pad, use_ni);
        Self::state_bytes(&state)
    }

    /// Serializes a compression state to the big-endian digest bytes.
    pub(crate) fn state_bytes(state: &[u32; 8]) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The raw compression state, valid only when no partial block is
    /// buffered (e.g. an HMAC midstate right after the key block).
    pub(crate) fn block_aligned_state(&self) -> [u32; 8] {
        debug_assert_eq!(self.buffer_len, 0, "state read mid-block");
        self.state
    }

    /// Whether this hasher dispatches to the SHA-NI compression.
    pub(crate) fn uses_ni(&self) -> bool {
        self.use_ni
    }

    /// One dispatched compression over a caller-held state — the
    /// primitive behind the block-aligned fast paths ([`Sha256::digest64`],
    /// [`crate::hmac::HmacSha256::tag_header64`]).
    pub(crate) fn compress_raw(state: &mut [u32; 8], block: &[u8; 64], use_ni: bool) {
        #[cfg(target_arch = "x86_64")]
        if use_ni {
            // SAFETY: callers obtain `use_ni` from `shani_available` /
            // `uses_ni`, both rooted in the cached CPUID probe.
            unsafe { ni::compress(state, block) };
            return;
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = use_ni;
        Self::compress_portable_raw(state, block);
    }

    /// One-shot digest forced through the portable compression loop
    /// regardless of CPU features — the equivalence/bench reference for
    /// the SHA-NI path (bit-identical by the FIPS-180 vectors and the
    /// randomized equivalence tests).
    pub fn digest_portable(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new().force_software();
        h.update(data);
        h.finalize()
    }

    /// Disables the SHA-NI path on this hasher (dispatch-off reference).
    pub fn force_software(mut self) -> Self {
        self.use_ni = false;
        self
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    ///
    /// Padding is written directly into the block buffer (one or two
    /// compressions, depending on where the length words land) instead of
    /// dribbling zero bytes through `update` one at a time — for the
    /// fixed-size MAC inputs in this codebase the whole padded tail is a
    /// single pre-laid-out compression.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.buffer[self.buffer_len] = 0x80;
        if self.buffer_len >= 56 {
            // No room for the length words: pad this block out and
            // compress, then the length goes in an all-padding block.
            self.buffer[self.buffer_len + 1..].fill(0);
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; 64];
        } else {
            self.buffer[self.buffer_len + 1..56].fill(0);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        Self::state_bytes(&self.state)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: `use_ni` is set only after the CPUID probe in
            // `shani_available` confirmed the sha/ssse3/sse4.1 extensions.
            unsafe { ni::compress(&mut self.state, block) };
            return;
        }
        Self::compress_portable_raw(&mut self.state, block);
    }

    fn compress_portable_raw(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split {split}");
        }
    }

    #[test]
    fn dispatch_matches_portable_all_lengths() {
        // On SHA-NI hardware `digest` takes the intrinsics path and
        // `digest_portable` the scalar loop; every length in 0..=200
        // exercises all padding layouts through both. (Without SHA-NI the
        // two paths coincide and this is a self-check.)
        let mut data = [0u8; 200];
        let mut x = 0x9e3779b97f4a7c15u64;
        for b in data.iter_mut() {
            // SplitMix64-style fill, deterministic.
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(0x94d049bb133111eb);
            *b = (x >> 56) as u8;
        }
        for len in 0..=data.len() {
            assert_eq!(
                Sha256::digest(&data[..len]),
                Sha256::digest_portable(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn dispatch_matches_portable_incremental() {
        let data: Vec<u8> = (0..777u32).map(|i| (i.wrapping_mul(97) % 256) as u8).collect();
        for split in [0, 1, 63, 64, 65, 128, 500, 777] {
            let mut fast = Sha256::new();
            fast.update(&data[..split]);
            fast.update(&data[split..]);
            let mut slow = Sha256::new().force_software();
            slow.update(&data[..split]);
            slow.update(&data[split..]);
            assert_eq!(fast.finalize(), slow.finalize(), "split {split}");
        }
    }

    #[test]
    fn fips_vectors_portable_path() {
        // The FIPS-180 vectors above pin the dispatched path; pin the
        // portable reference independently so a broken fallback cannot
        // hide behind SHA-NI hardware.
        assert_eq!(
            hex(&Sha256::digest_portable(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest_portable(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn digest64_matches_digest() {
        let mut block = [0u8; 64];
        let mut x = 0x243f6a8885a308d3u64;
        for b in block.iter_mut() {
            x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(0x94d049bb133111eb);
            *b = (x >> 48) as u8;
        }
        assert_eq!(Sha256::digest64(&block), Sha256::digest(&block));
        assert_eq!(Sha256::digest64(&[0u8; 64]), Sha256::digest(&[0u8; 64]));
        assert_eq!(Sha256::digest64(&[0xff; 64]), Sha256::digest(&[0xff; 64]));
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Each length near the 64-byte boundary exercises a different padding
        // path; compare against self-consistency (prefix property must NOT
        // hold — distinct lengths give distinct digests).
        let data = [0u8; 130];
        let mut seen = std::collections::HashSet::new();
        for len in 54..=66 {
            assert!(seen.insert(Sha256::digest(&data[..len])));
        }
    }
}
