//! Truncated 64-bit authentication tags for data lines and tree nodes.
//!
//! Secure-memory designs (SGX's MEE, the paper's baseline) attach a 64-bit
//! MAC to every protected unit. The paper uses an AES-GCM-class engine; we
//! substitute truncated HMAC-SHA-256 — same tag width (so the same 2^-64
//! collision bound discussed in §3.2.2) and the same binding structure:
//! every tag covers the unit's **address**, its **payload**, and the
//! **freshness counter** that protects it against replay.
//!
//! # Example
//!
//! ```
//! use soteria_crypto::{mac::MacEngine, MacKey};
//!
//! let engine = MacEngine::new(MacKey::from_bytes([3u8; 32]));
//! let tag = engine.data_mac(0x1000, &[0u8; 64], 7);
//! assert!(engine.verify_data(0x1000, &[0u8; 64], 7, tag));
//! assert!(!engine.verify_data(0x1000, &[0u8; 64], 8, tag)); // replayed counter
//! ```

use crate::hmac::HmacSha256;
use crate::MacKey;

/// A 64-bit authentication tag.
pub type Tag64 = u64;

/// Domain-separation labels so tags from different metadata classes can
/// never be confused for one another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Domain {
    Data = 1,
    CounterBlock = 2,
    TreeNode = 3,
    ShadowEntry = 4,
}

/// Keyed engine producing the 64-bit tags used throughout the controller.
///
/// The HMAC ipad/opad key blocks are compressed once at construction into
/// a keyed [`HmacSha256`] template; each tag clones the two midstates
/// instead of re-running the key schedule, cutting a fixed-size data MAC
/// from five SHA-256 compressions to three.
#[derive(Clone, Debug)]
pub struct MacEngine {
    template: HmacSha256,
}

impl MacEngine {
    /// Creates an engine with the controller's MAC key.
    pub fn new(key: MacKey) -> Self {
        Self {
            template: HmacSha256::new(key.as_bytes()),
        }
    }

    fn tag(&self, domain: Domain, address: u64, payload: &[u8], counter: u64) -> Tag64 {
        // Every hot-path tag covers a 64-byte unit (data line, counter
        // block, ToC counter payload, shadow entry); that fixed shape
        // takes the block-aligned HMAC path. Other payload sizes fall
        // back to the streaming computation — bit-identical either way.
        if let Ok(line) = <&[u8; 64]>::try_from(payload) {
            let mut header = [0u8; 17];
            header[0] = domain as u8;
            header[1..9].copy_from_slice(&address.to_le_bytes());
            header[9..17].copy_from_slice(&counter.to_le_bytes());
            let digest = self.template.tag_header64(&header, line);
            return soteria_rt::bytes::u64_le(&digest[..8]);
        }
        let mut h = self.template.clone();
        h.update(&[domain as u8]);
        h.update(&address.to_le_bytes());
        h.update(&counter.to_le_bytes());
        h.update(payload);
        let digest = h.finalize();
        soteria_rt::bytes::u64_le(&digest[..8])
    }

    /// MAC over an encrypted data line, bound to its address and encryption
    /// counter (the per-line MAC of §2.5).
    pub fn data_mac(&self, address: u64, ciphertext: &[u8; 64], counter: u64) -> Tag64 {
        self.tag(Domain::Data, address, ciphertext, counter)
    }

    /// Verifies a data-line MAC.
    pub fn verify_data(
        &self,
        address: u64,
        ciphertext: &[u8; 64],
        counter: u64,
        tag: Tag64,
    ) -> bool {
        self.data_mac(address, ciphertext, counter) == tag
    }

    /// MAC over a 64-byte counter block (tree leaf), bound to the counter in
    /// its parent ToC node.
    pub fn counter_block_mac(&self, address: u64, block: &[u8; 64], parent_counter: u64) -> Tag64 {
        self.tag(Domain::CounterBlock, address, block, parent_counter)
    }

    /// MAC over the counter payload of a ToC node, bound to the counter in
    /// its parent node (the inter-level dependency of Fig. 2).
    pub fn tree_node_mac(&self, address: u64, counters: &[u64; 8], parent_counter: u64) -> Tag64 {
        let mut payload = [0u8; 64];
        for (i, c) in counters.iter().enumerate() {
            payload[8 * i..8 * i + 8].copy_from_slice(&c.to_le_bytes());
        }
        self.tag(Domain::TreeNode, address, &payload, parent_counter)
    }

    /// MAC over an Anubis shadow-table entry.
    pub fn shadow_entry_mac(&self, address: u64, payload: &[u8]) -> Tag64 {
        self.tag(Domain::ShadowEntry, address, payload, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new(MacKey::from_bytes([0x11; 32]))
    }

    #[test]
    fn data_mac_verifies() {
        let e = engine();
        let line = [0xaa; 64];
        let tag = e.data_mac(64, &line, 3);
        assert!(e.verify_data(64, &line, 3, tag));
    }

    #[test]
    fn tamper_detection() {
        let e = engine();
        let mut line = [0xaa; 64];
        let tag = e.data_mac(64, &line, 3);
        line[5] ^= 1;
        assert!(!e.verify_data(64, &line, 3, tag));
    }

    #[test]
    fn replay_detection_via_counter() {
        let e = engine();
        let line = [0xaa; 64];
        let old = e.data_mac(64, &line, 3);
        assert!(!e.verify_data(64, &line, 4, old));
    }

    #[test]
    fn relocation_detection_via_address() {
        let e = engine();
        let line = [0xaa; 64];
        let tag = e.data_mac(64, &line, 3);
        assert!(!e.verify_data(128, &line, 3, tag));
    }

    #[test]
    fn domains_are_separated() {
        // The same bytes in different metadata roles must give different
        // tags, otherwise a counter block could be replayed as a tree node.
        let e = engine();
        let payload = [0u8; 64];
        let counters = [0u64; 8];
        let data = e.data_mac(0, &payload, 0);
        let leaf = e.counter_block_mac(0, &payload, 0);
        let node = e.tree_node_mac(0, &counters, 0);
        assert_ne!(data, leaf);
        assert_ne!(leaf, node);
        assert_ne!(data, node);
    }

    #[test]
    fn tree_node_mac_depends_on_parent_counter() {
        let e = engine();
        let counters = [1u64, 2, 3, 4, 5, 6, 7, 8];
        assert_ne!(
            e.tree_node_mac(0, &counters, 10),
            e.tree_node_mac(0, &counters, 11)
        );
    }

    #[test]
    fn fast_path_matches_streaming_hmac() {
        // `data_mac` takes the block-aligned tag_header64 path for its
        // 64-byte payload; pin it against the plain streaming HMAC over
        // the identical byte sequence.
        let e = MacEngine::new(MacKey::from_bytes([0x42; 32]));
        let line = [0x5a; 64];
        let mut h = crate::hmac::HmacSha256::new(&[0x42; 32]);
        h.update(&[1u8]); // Domain::Data
        h.update(&7u64.to_le_bytes());
        h.update(&9u64.to_le_bytes());
        h.update(&line);
        let digest = h.finalize();
        assert_eq!(
            e.data_mac(7, &line, 9),
            soteria_rt::bytes::u64_le(&digest[..8])
        );
    }

    #[test]
    fn keys_separate_engines() {
        let a = MacEngine::new(MacKey::from_bytes([1; 32]));
        let b = MacEngine::new(MacKey::from_bytes([2; 32]));
        assert_ne!(a.data_mac(0, &[0; 64], 0), b.data_mac(0, &[0; 64], 0));
    }
}
