//! Counter-mode encryption of 64-byte memory lines (Fig. 1 of the paper).
//!
//! Each 64-byte line is encrypted by XORing it with a one-time pad (OTP).
//! The OTP is four AES-128 blocks generated from an initialization vector
//! containing the **per-line counter**, the **line address**, the 16-byte
//! **chunk index** within the line, and padding — so a given (address,
//! counter) pair never produces the same pad twice for different data, and
//! two lines never share a pad.
//!
//! The counter passed here is the *combined* counter: for the split-counter
//! scheme it is `major << 7 | minor` (see `soteria::counter`).
//!
//! # Example
//!
//! ```
//! use soteria_crypto::{ctr::CounterModeCipher, EncryptionKey};
//!
//! let cipher = CounterModeCipher::new(EncryptionKey::from_bytes([1u8; 16]));
//! let line = [9u8; 64];
//! let ct = cipher.encrypt_line(&line, 0x40, 1);
//! // Counter bump => different ciphertext for the same plaintext/address.
//! assert_ne!(ct, cipher.encrypt_line(&line, 0x40, 2));
//! ```

use crate::aes::Aes128;
use crate::EncryptionKey;

/// Size of a memory line in bytes.
pub const LINE_BYTES: usize = 64;

/// Counter-mode cipher for 64-byte memory lines.
#[derive(Clone, Debug)]
pub struct CounterModeCipher {
    aes: Aes128,
}

impl CounterModeCipher {
    /// Creates a cipher from the memory-encryption key.
    pub fn new(key: EncryptionKey) -> Self {
        Self {
            aes: Aes128::new(*key.as_bytes()),
        }
    }

    /// Generates the 64-byte one-time pad for `(address, counter)`.
    ///
    /// Batched keystream: the IV is assembled once, only the chunk index
    /// is patched into byte 15 between the four blocks, and all four go
    /// through [`Aes128::encrypt_blocks4`](crate::aes::Aes128) in one
    /// call — one key-schedule reuse, pipelined on hardware AES, no
    /// per-byte dispatch. Bit-identical to
    /// [`Self::one_time_pad_reference`].
    ///
    /// In hardware this happens in parallel with the data fetch, which is
    /// what hides the decryption latency (§2.4); the timing model in
    /// `soteria-simcpu` accounts for that overlap.
    pub fn one_time_pad(&self, address: u64, counter: u64) -> [u8; LINE_BYTES] {
        // IV = counter (8B) || address (8B) -- with the chunk index
        // folded into the top pad byte region.
        let mut iv = [0u8; 16];
        iv[0..8].copy_from_slice(&counter.to_le_bytes());
        iv[8..16].copy_from_slice(&address.to_le_bytes());
        let base15 = iv[15];
        let ivs: [[u8; 16]; 4] = core::array::from_fn(|chunk| {
            let mut block = iv;
            block[15] = base15 ^ chunk as u8;
            block
        });
        let blocks = self.aes.encrypt_blocks4(&ivs);
        let mut pad = [0u8; LINE_BYTES];
        for (chunk, block) in blocks.iter().enumerate() {
            pad[16 * chunk..16 * (chunk + 1)].copy_from_slice(block);
        }
        pad
    }

    /// Generates the pads for the *same address* under two counters in
    /// one call — the shape of a page re-encryption step, where a line
    /// is stripped of its old-counter pad and dressed in the new one.
    /// All eight AES blocks go through
    /// [`Aes128::encrypt_blocks8`](crate::aes::Aes128) so the two
    /// keystreams share one hardware dispatch. Bit-identical to two
    /// [`Self::one_time_pad`] calls.
    pub fn one_time_pads2(
        &self,
        address: u64,
        counter_a: u64,
        counter_b: u64,
    ) -> ([u8; LINE_BYTES], [u8; LINE_BYTES]) {
        let mut ivs = [[0u8; 16]; 8];
        for (half, counter) in [counter_a, counter_b].into_iter().enumerate() {
            let mut iv = [0u8; 16];
            iv[0..8].copy_from_slice(&counter.to_le_bytes());
            iv[8..16].copy_from_slice(&address.to_le_bytes());
            let base15 = iv[15];
            for chunk in 0..4 {
                let mut block = iv;
                block[15] = base15 ^ chunk as u8;
                ivs[4 * half + chunk] = block;
            }
        }
        let blocks = self.aes.encrypt_blocks8(&ivs);
        let mut pad_a = [0u8; LINE_BYTES];
        let mut pad_b = [0u8; LINE_BYTES];
        for chunk in 0..4 {
            pad_a[16 * chunk..16 * (chunk + 1)].copy_from_slice(&blocks[chunk]);
            pad_b[16 * chunk..16 * (chunk + 1)].copy_from_slice(&blocks[4 + chunk]);
        }
        (pad_a, pad_b)
    }

    /// The original per-chunk IV-rebuild implementation, kept as the
    /// equivalence/benchmark reference for [`Self::one_time_pad`].
    pub fn one_time_pad_reference(&self, address: u64, counter: u64) -> [u8; LINE_BYTES] {
        let mut pad = [0u8; LINE_BYTES];
        for chunk in 0..4u8 {
            let mut iv = [0u8; 16];
            iv[0..8].copy_from_slice(&counter.to_le_bytes());
            iv[8..16].copy_from_slice(&address.to_le_bytes());
            iv[15] ^= chunk;
            let block = self.aes.encrypt_block_reference(&iv);
            pad[16 * chunk as usize..16 * (chunk as usize + 1)].copy_from_slice(&block);
        }
        pad
    }

    /// Encrypts a 64-byte line. The pad XOR runs on eight `u64` words
    /// rather than 64 single bytes.
    pub fn encrypt_line(
        &self,
        plaintext: &[u8; LINE_BYTES],
        address: u64,
        counter: u64,
    ) -> [u8; LINE_BYTES] {
        let pad = self.one_time_pad(address, counter);
        let mut out = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES / 8 {
            let p = soteria_rt::bytes::u64_ne(&plaintext[8 * i..8 * i + 8]);
            let k = soteria_rt::bytes::u64_ne(&pad[8 * i..8 * i + 8]);
            out[8 * i..8 * i + 8].copy_from_slice(&(p ^ k).to_ne_bytes());
        }
        out
    }

    /// Byte-at-a-time reference for [`Self::encrypt_line`] (used by the
    /// equivalence tests and the before/after benchmarks).
    pub fn encrypt_line_reference(
        &self,
        plaintext: &[u8; LINE_BYTES],
        address: u64,
        counter: u64,
    ) -> [u8; LINE_BYTES] {
        let pad = self.one_time_pad_reference(address, counter);
        let mut out = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            out[i] = plaintext[i] ^ pad[i];
        }
        out
    }

    /// Decrypts a 64-byte line (identical to encryption in counter mode).
    pub fn decrypt_line(
        &self,
        ciphertext: &[u8; LINE_BYTES],
        address: u64,
        counter: u64,
    ) -> [u8; LINE_BYTES] {
        self.encrypt_line(ciphertext, address, counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> CounterModeCipher {
        CounterModeCipher::new(EncryptionKey::from_bytes([0x42; 16]))
    }

    #[test]
    fn round_trip() {
        let c = cipher();
        let line: [u8; 64] = core::array::from_fn(|i| i as u8);
        let ct = c.encrypt_line(&line, 0x1234_5678, 99);
        assert_eq!(c.decrypt_line(&ct, 0x1234_5678, 99), line);
    }

    #[test]
    fn wrong_counter_garbles() {
        let c = cipher();
        let line = [7u8; 64];
        let ct = c.encrypt_line(&line, 0x40, 5);
        assert_ne!(c.decrypt_line(&ct, 0x40, 6), line);
    }

    #[test]
    fn wrong_address_garbles() {
        let c = cipher();
        let line = [7u8; 64];
        let ct = c.encrypt_line(&line, 0x40, 5);
        assert_ne!(c.decrypt_line(&ct, 0x80, 5), line);
    }

    #[test]
    fn pad_chunks_are_distinct() {
        // The four AES blocks inside one pad must differ (chunk index is in
        // the IV), otherwise patterns within a line would leak.
        let pad = cipher().one_time_pad(0, 0);
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert_ne!(pad[16 * a..16 * a + 16], pad[16 * b..16 * b + 16]);
            }
        }
    }

    #[test]
    fn pads_unique_across_counters_and_addresses() {
        let c = cipher();
        let mut seen = std::collections::HashSet::new();
        for addr in [0u64, 64, 128] {
            for ctr in 0..50u64 {
                assert!(seen.insert(c.one_time_pad(addr, ctr).to_vec()));
            }
        }
    }

    #[test]
    fn batched_pad_matches_reference() {
        // Equivalence proof for the batched keystream: same pad, same
        // ciphertext as the per-chunk IV-rebuild reference, across
        // addresses/counters that exercise every IV byte (including the
        // high address byte that shares IV[15] with the chunk index).
        let c = cipher();
        let line: [u8; 64] = core::array::from_fn(|i| (i as u8).wrapping_mul(37));
        for addr in [0u64, 0x40, 0xdead_beef, u64::MAX, 0xff00_0000_0000_0000] {
            for ctr in [0u64, 1, 0x7f, u64::MAX] {
                assert_eq!(
                    c.one_time_pad(addr, ctr),
                    c.one_time_pad_reference(addr, ctr),
                    "pad mismatch at addr={addr:#x} ctr={ctr:#x}"
                );
                assert_eq!(
                    c.encrypt_line(&line, addr, ctr),
                    c.encrypt_line_reference(&line, addr, ctr),
                    "line mismatch at addr={addr:#x} ctr={ctr:#x}"
                );
            }
        }
    }

    #[test]
    fn paired_pads_match_singles() {
        let c = cipher();
        for addr in [0u64, 0x40, 0xdead_beef, u64::MAX] {
            for (ca, cb) in [(0u64, 1u64), (5, 5), (0x7f, 0x80), (u64::MAX, 0)] {
                let (pa, pb) = c.one_time_pads2(addr, ca, cb);
                assert_eq!(pa, c.one_time_pad(addr, ca), "addr={addr:#x} ca={ca}");
                assert_eq!(pb, c.one_time_pad(addr, cb), "addr={addr:#x} cb={cb}");
            }
        }
    }

    #[test]
    fn encryption_is_xor_homomorphic() {
        // Sanity property of CTR mode: E(a) ^ E(b) == a ^ b for equal
        // (address, counter). This is exactly why counter reuse is fatal and
        // why the paper insists counters never repeat.
        let c = cipher();
        let a = [0x11u8; 64];
        let b = [0x2eu8; 64];
        let ea = c.encrypt_line(&a, 0, 3);
        let eb = c.encrypt_line(&b, 0, 3);
        for i in 0..64 {
            assert_eq!(ea[i] ^ eb[i], a[i] ^ b[i]);
        }
    }
}
