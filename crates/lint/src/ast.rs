//! Token trees and item extraction for the concurrency pass.
//!
//! Builds on the literal-blanked code channel of [`crate::lexer`]: a
//! flat, line-attributed token stream plus a one-pass brace walk that
//! recovers the items the conc rules reason about — functions (with
//! body spans, visibility, and their `mod`/`impl` qualification),
//! struct fields of lock-ish type (`Mutex`, `RwLock`, `Condvar`), and
//! `extern "C"` declarations (the raw-syscall surface policed by U2).
//!
//! This is deliberately not a Rust parser. Brace matching over the
//! blanked code channel is exact (no braces survive inside literals or
//! comments), and header classification — the tokens between the last
//! `;`/`{`/`}` and an opening `{` — is enough to tell `mod`, `impl`,
//! `struct`, `extern "C"`, and `fn` items apart from control flow.

use crate::lexer::SourceLine;

/// One token of the code channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token text: an identifier (raw identifiers keep their `r#`
    /// prefix), a lifetime (`'a`), the merged path separator `::`, or a
    /// single punctuation character.
    pub text: String,
    /// 0-based source line the token starts on.
    pub line: usize,
}

impl Tok {
    fn new(text: impl Into<String>, line: usize) -> Tok {
        Tok {
            text: text.into(),
            line,
        }
    }

    /// True if this token is an identifier (or raw identifier).
    pub fn is_ident(&self) -> bool {
        let mut s = self.text.as_str();
        if let Some(rest) = s.strip_prefix("r#") {
            s = rest;
        }
        s.chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
            && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
    }
}

/// Tokenizes the code channels of `lines` into a flat stream.
pub fn tokenize(lines: &[SourceLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line_no, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
            let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';
            if c == 'r' && chars.get(i + 1) == Some(&'#') {
                // Raw identifier: keep the prefix so it never compares
                // equal to its keyword.
                let mut j = i + 2;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                toks.push(Tok::new(chars[i..j].iter().collect::<String>(), line_no));
                i = j;
            } else if is_ident_start(c) || c.is_ascii_digit() {
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                toks.push(Tok::new(chars[i..j].iter().collect::<String>(), line_no));
                i = j;
            } else if c == '\'' && chars.get(i + 1).copied().is_some_and(is_ident_start) {
                // Lifetime (char-literal contents were blanked to '').
                let mut j = i + 2;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                toks.push(Tok::new(chars[i..j].iter().collect::<String>(), line_no));
                i = j;
            } else if c == ':' && chars.get(i + 1) == Some(&':') {
                toks.push(Tok::new("::", line_no));
                i += 2;
            } else {
                toks.push(Tok::new(c.to_string(), line_no));
                i += 1;
            }
        }
    }
    toks
}

/// What kind of lock a struct field holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
}

/// One function item (definition or bodyless declaration).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Simple name (e.g. `worker_loop`).
    pub name: String,
    /// Qualified name from the enclosing `mod`/`impl` nesting
    /// (e.g. `epoll::Epoll::ctl`).
    pub qual: String,
    /// The `impl` type the function is a method of, if any.
    pub impl_type: Option<String>,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_bare_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body (between the braces); empty for
    /// bodyless declarations.
    pub body: std::ops::Range<usize>,
}

/// Everything the conc pass needs from one parsed file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Workspace-relative path.
    pub rel: String,
    /// The flat token stream.
    pub toks: Vec<Tok>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
    /// `(struct, field, kind)` for fields of `Mutex`/`RwLock` type.
    pub lock_fields: Vec<(String, String, LockKind)>,
    /// Names of struct fields declared as `Condvar`.
    pub condvar_fields: Vec<String>,
    /// Functions declared inside `extern "C"` blocks: `(name, line)`.
    pub extern_fns: Vec<(String, usize)>,
}

/// A brace frame on the item-nesting stack.
enum Frame {
    Mod(String),
    Impl(String),
    Struct(String),
    Extern,
    Other,
}

/// Parses the lexed `lines` of `rel` into tokens and items.
pub fn parse_file(rel: &str, lines: &[SourceLine]) -> FileAst {
    let toks = tokenize(lines);
    let mut ast = FileAst {
        rel: rel.to_string(),
        ..FileAst::default()
    };
    let mut stack: Vec<Frame> = Vec::new();
    // Functions whose body brace is open: (index into ast.fns, depth of
    // the opening brace).
    let mut open_fns: Vec<(usize, usize)> = Vec::new();
    // Function headers seen but not yet resolved to `{` or `;`.
    let mut pending_fn: Option<FnItem> = None;
    let mut header_start = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        match t {
            "fn" => {
                let in_extern = matches!(stack.last(), Some(Frame::Extern));
                if let Some(name) = toks.get(i + 1).filter(|t| t.is_ident()) {
                    if in_extern {
                        ast.extern_fns.push((name.text.clone(), name.line));
                    } else {
                        let header = &toks[header_start..i];
                        let is_bare_pub = header.iter().enumerate().any(|(k, h)| {
                            h.text == "pub"
                                && header.get(k + 1).map(|n| n.text.as_str()) != Some("(")
                        });
                        let mut quals: Vec<&str> = Vec::new();
                        let mut impl_type = None;
                        for f in &stack {
                            match f {
                                Frame::Mod(m) => quals.push(m.as_str()),
                                Frame::Impl(ty) => {
                                    quals.push(ty.as_str());
                                    impl_type = Some(ty.clone());
                                }
                                _ => {}
                            }
                        }
                        quals.push(name.text.as_str());
                        pending_fn = Some(FnItem {
                            name: name.text.clone(),
                            qual: quals.join("::"),
                            impl_type,
                            is_bare_pub,
                            line: toks[i].line,
                            body: 0..0,
                        });
                    }
                }
            }
            "{" => {
                let frame = classify_header(&toks[header_start..i]);
                if let Some(mut f) = pending_fn.take() {
                    f.body = (i + 1)..(i + 1); // end patched at the `}`
                    open_fns.push((ast.fns.len(), stack.len()));
                    ast.fns.push(f);
                    stack.push(Frame::Other);
                } else {
                    stack.push(frame);
                }
                header_start = i + 1;
            }
            "}" => {
                stack.pop();
                if let Some(&(fi, depth)) = open_fns.last() {
                    if depth == stack.len() {
                        ast.fns[fi].body.end = i;
                        open_fns.pop();
                    }
                }
                header_start = i + 1;
            }
            ";" => {
                // Bodyless declaration (trait method, extern fn) — or
                // just a statement boundary.
                if let Some(f) = pending_fn.take() {
                    ast.fns.push(f);
                }
                header_start = i + 1;
            }
            ":" => {
                // A struct field `name: Type` at struct-body depth.
                if matches!(stack.last(), Some(Frame::Struct(_))) {
                    record_field(&toks, i, &stack, &mut ast);
                }
            }
            _ => {}
        }
        i += 1;
    }
    ast.toks = toks;
    ast
}

/// Classifies the header tokens before an opening `{`.
fn classify_header(header: &[Tok]) -> Frame {
    let pos = |name: &str| header.iter().position(|t| t.text == name);
    if let Some(k) = pos("mod") {
        if let Some(name) = header.get(k + 1).filter(|t| t.is_ident()) {
            return Frame::Mod(name.text.clone());
        }
    }
    if let Some(k) = pos("impl") {
        if let Some(ty) = impl_type_name(&header[k + 1..]) {
            return Frame::Impl(ty);
        }
    }
    if let Some(k) = pos("struct") {
        if let Some(name) = header.get(k + 1).filter(|t| t.is_ident()) {
            return Frame::Struct(name.text.clone());
        }
    }
    if let Some(k) = pos("extern") {
        // `extern "C"` lexes as `extern ""` (literal contents blanked).
        if header.get(k + 1).map(|t| t.text.as_str()) == Some("\"") {
            return Frame::Extern;
        }
    }
    Frame::Other
}

/// The self type of an `impl` header: the last path segment of the type
/// being implemented (after `for` if present), generics skipped.
fn impl_type_name(after_impl: &[Tok]) -> Option<String> {
    let mut toks = after_impl;
    if let Some(k) = toks.iter().position(|t| t.text == "for") {
        toks = &toks[k + 1..];
    }
    // Walk to `where` (or the end), remembering the last identifier seen
    // outside angle brackets.
    let mut depth = 0i32;
    let mut name = None;
    for t in toks {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "where" if depth <= 0 => break,
            _ if depth <= 0 && t.is_ident() => name = Some(t.text.clone()),
            _ => {}
        }
    }
    name
}

/// Records a struct field of lock-ish type at the `:` token `i`.
fn record_field(toks: &[Tok], i: usize, stack: &[Frame], ast: &mut FileAst) {
    let Some(Frame::Struct(struct_name)) = stack.last() else {
        return;
    };
    let Some(field) = toks.get(i.wrapping_sub(1)).filter(|t| t.is_ident()) else {
        return;
    };
    // Scan the type tokens to the field's trailing `,` (or the struct's
    // closing brace), staying inside this field's generics.
    let mut depth = 0i32;
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "," if depth <= 0 => break,
            "}" if depth <= 0 => break,
            "Mutex" => {
                ast.lock_fields.push((
                    struct_name.clone(),
                    field.text.clone(),
                    LockKind::Mutex,
                ));
            }
            "RwLock" => {
                ast.lock_fields.push((
                    struct_name.clone(),
                    field.text.clone(),
                    LockKind::RwLock,
                ));
            }
            "Condvar" => ast.condvar_fields.push(field.text.clone()),
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> FileAst {
        parse_file("crates/x/src/lib.rs", &lexer::lex(src))
    }

    #[test]
    fn tokenizer_merges_paths_and_keeps_raw_idents() {
        let toks = tokenize(&lexer::lex("a::b(r#match, 'a, x);"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["a", "::", "b", "(", "r#match", ",", "'a", ",", "x", ")", ";"]
        );
        assert!(toks[4].is_ident());
    }

    #[test]
    fn functions_get_bodies_and_qualification() {
        let ast = parse(
            "mod net {\n    pub struct S;\n    impl S {\n        pub fn go(&self) {\n            inner();\n        }\n        fn quiet() {}\n    }\n}\npub(crate) fn free() { x(); }\n",
        );
        let names: Vec<(&str, &str)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.qual.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![("go", "net::S::go"), ("quiet", "net::S::quiet"), ("free", "free")]
        );
        assert!(ast.fns[0].is_bare_pub);
        assert_eq!(ast.fns[0].impl_type.as_deref(), Some("S"));
        assert!(!ast.fns[2].is_bare_pub, "pub(crate) is not bare pub");
        let body: Vec<&str> = ast.toks[ast.fns[0].body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, vec!["inner", "(", ")", ";"]);
    }

    #[test]
    fn lock_and_condvar_fields_are_registered() {
        let ast = parse(
            "pub struct Shared {\n    pub state: std::sync::Mutex<State>,\n    cache: RwLock<Vec<u8>>,\n    pub job_ready: Condvar,\n    plain: usize,\n}\n",
        );
        assert_eq!(
            ast.lock_fields,
            vec![
                ("Shared".to_string(), "state".to_string(), LockKind::Mutex),
                ("Shared".to_string(), "cache".to_string(), LockKind::RwLock),
            ]
        );
        assert_eq!(ast.condvar_fields, vec!["job_ready".to_string()]);
    }

    #[test]
    fn extern_c_declarations_are_collected() {
        let ast = parse(
            "mod sys {\n    extern \"C\" {\n        fn epoll_create1(flags: i32) -> i32;\n        fn epoll_wait(epfd: i32) -> i32;\n    }\n}\nfn normal() {}\n",
        );
        let names: Vec<&str> = ast.extern_fns.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["epoll_create1", "epoll_wait"]);
        assert_eq!(ast.fns.len(), 1, "extern decls are not workspace fns");
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let ast = parse("impl Drop for Poller<'_> {\n    fn drop(&mut self) {}\n}\n");
        assert_eq!(ast.fns[0].qual, "Poller::drop");
    }
}
