//! `soteria-lint` binary: walk the workspace, enforce the determinism &
//! hermeticity rules, and gate on the checked-in baseline.
//!
//! ```text
//! soteria-lint --workspace [--root DIR] [--baseline FILE] [--json]
//!              [--write-baseline] [--list-rules]
//! soteria-lint --changed FILE... [--root DIR] [--baseline FILE] [--json]
//! ```
//!
//! Exit codes (pinned, tested): 0 = clean, 1 = new violations,
//! 2 = usage/IO/baseline error.

use std::path::PathBuf;

use soteria_lint::{
    lint_files, lint_workspace, Baseline, LintError, LintReport, Rule, EXIT_CLEAN,
    EXIT_ERROR, EXIT_VIOLATIONS,
};

const USAGE: &str = "usage: soteria-lint --workspace [--root DIR] [--baseline FILE] \
[--json] [--write-baseline] [--list-rules]\n\
       soteria-lint --changed FILE... [--root DIR] [--baseline FILE] [--json]";

/// Exact `--help` text (pinned by test).
const HELP: &str = "\
soteria-lint: determinism, hermeticity & concurrency linter

usage: soteria-lint --workspace [--root DIR] [--baseline FILE] \
[--json] [--write-baseline] [--list-rules]
       soteria-lint --changed FILE... [--root DIR] [--baseline FILE] [--json]

modes:
  --workspace        lint every *.rs and Cargo.toml under the root
                     (lex pass + whole-workspace conc pass)
  --changed FILE...  lint only the listed files with the lex pass
                     (fast pre-commit mode; missing files are skipped)
  --list-rules       print the rule catalog, one name per line

options:
  --root DIR         workspace root (default: .)
  --baseline FILE    baseline path (default: ROOT/lint-baseline.json)
  --json             print the machine-readable soteria-lint/v2 report
  --write-baseline   grandfather all current findings into the baseline
  --help             show this help

exit codes: 0 clean, 1 new violations, 2 usage/IO/baseline error
";

struct Args {
    workspace: bool,
    changed: Option<Vec<String>>,
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    list_rules: bool,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, LintError> {
    let mut args = Args {
        workspace: false,
        changed: None,
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        write_baseline: false,
        list_rules: false,
        help: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => args.help = true,
            "--changed" => {
                args.changed.get_or_insert_with(Vec::new);
            }
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".to_string()))?;
                args.root = PathBuf::from(v);
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--baseline needs a file".to_string()))?;
                args.baseline = Some(PathBuf::from(v));
            }
            other if !other.starts_with('-') && args.changed.is_some() => {
                if let Some(files) = args.changed.as_mut() {
                    files.push(other.to_string());
                }
            }
            other => {
                return Err(LintError::Usage(format!("unknown flag '{other}'")));
            }
        }
    }
    if args.workspace && args.changed.is_some() {
        return Err(LintError::Usage(
            "--workspace and --changed are mutually exclusive".to_string(),
        ));
    }
    if args.write_baseline && args.changed.is_some() {
        return Err(LintError::Usage(
            "--write-baseline needs --workspace (a partial baseline would lie)".to_string(),
        ));
    }
    if !args.workspace && !args.list_rules && !args.help && args.changed.is_none() {
        return Err(LintError::Usage(
            "pass --workspace (or --list-rules)".to_string(),
        ));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<i32, LintError> {
    if args.help {
        print!("{HELP}");
        return Ok(EXIT_CLEAN);
    }
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{rule}");
        }
        return Ok(EXIT_CLEAN);
    }
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));
    let baseline = if args.write_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&baseline_path.display().to_string(), &text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::empty(),
            Err(e) => {
                return Err(LintError::Io {
                    path: baseline_path.display().to_string(),
                    message: e.to_string(),
                })
            }
        }
    };

    let report: LintReport = match &args.changed {
        Some(files) => lint_files(&args.root, files, &baseline)?,
        None => lint_workspace(&args.root, &baseline)?,
    };

    if args.write_baseline {
        let doc = Baseline::from_violations(&report.new_violations)
            .to_json()
            .to_pretty_string();
        std::fs::write(&baseline_path, doc).map_err(|e| LintError::Io {
            path: baseline_path.display().to_string(),
            message: e.to_string(),
        })?;
        println!(
            "soteria-lint: wrote baseline with {} entr{} to {}",
            report.new_violations.len(),
            if report.new_violations.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(EXIT_CLEAN);
    }

    if args.json {
        print!("{}", report.to_json().to_pretty_string());
    } else {
        for v in &report.new_violations {
            println!("{v}");
            println!("    | {}", v.snippet);
        }
        if report.new_violations.is_empty() {
            println!(
                "soteria-lint: clean ({} files checked, {} baselined)",
                report.checked_files.len(),
                report.baselined.len()
            );
        } else {
            println!(
                "soteria-lint: {} new violation(s) ({} files checked, {} baselined)",
                report.new_violations.len(),
                report.checked_files.len(),
                report.baselined.len()
            );
        }
    }
    Ok(if report.new_violations.is_empty() {
        EXIT_CLEAN
    } else {
        EXIT_VIOLATIONS
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match parse_args(&argv).and_then(|args| run(&args)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("soteria-lint: {e}");
            eprintln!("{USAGE}");
            EXIT_ERROR
        }
    };
    std::process::exit(code);
}
