//! `soteria-lint` binary: walk the workspace, enforce the determinism &
//! hermeticity rules, and gate on the checked-in baseline.
//!
//! ```text
//! soteria-lint --workspace [--root DIR] [--baseline FILE] [--json]
//!              [--write-baseline] [--list-rules]
//! ```
//!
//! Exit codes (pinned, tested): 0 = clean, 1 = new violations,
//! 2 = usage/IO/baseline error.

use std::path::PathBuf;

use soteria_lint::{
    lint_workspace, Baseline, LintError, Rule, EXIT_CLEAN, EXIT_ERROR, EXIT_VIOLATIONS,
};

const USAGE: &str = "usage: soteria-lint --workspace [--root DIR] [--baseline FILE] \
[--json] [--write-baseline] [--list-rules]";

struct Args {
    workspace: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, LintError> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--root needs a directory".to_string()))?;
                args.root = PathBuf::from(v);
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| LintError::Usage("--baseline needs a file".to_string()))?;
                args.baseline = Some(PathBuf::from(v));
            }
            other => {
                return Err(LintError::Usage(format!("unknown flag '{other}'")));
            }
        }
    }
    if !args.workspace && !args.list_rules {
        return Err(LintError::Usage("pass --workspace (or --list-rules)".to_string()));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<i32, LintError> {
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{rule}");
        }
        return Ok(EXIT_CLEAN);
    }
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.json"));
    let baseline = if args.write_baseline {
        Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&baseline_path.display().to_string(), &text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::empty(),
            Err(e) => {
                return Err(LintError::Io {
                    path: baseline_path.display().to_string(),
                    message: e.to_string(),
                })
            }
        }
    };

    let report = lint_workspace(&args.root, &baseline)?;

    if args.write_baseline {
        let doc = Baseline::from_violations(&report.new_violations)
            .to_json()
            .to_pretty_string();
        std::fs::write(&baseline_path, doc).map_err(|e| LintError::Io {
            path: baseline_path.display().to_string(),
            message: e.to_string(),
        })?;
        println!(
            "soteria-lint: wrote baseline with {} entr{} to {}",
            report.new_violations.len(),
            if report.new_violations.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(EXIT_CLEAN);
    }

    if args.json {
        print!("{}", report.to_json().to_pretty_string());
    } else {
        for v in &report.new_violations {
            println!("{v}");
            println!("    | {}", v.snippet);
        }
        if report.new_violations.is_empty() {
            println!(
                "soteria-lint: clean ({} files checked, {} baselined)",
                report.checked_files.len(),
                report.baselined.len()
            );
        } else {
            println!(
                "soteria-lint: {} new violation(s) ({} files checked, {} baselined)",
                report.new_violations.len(),
                report.checked_files.len(),
                report.baselined.len()
            );
        }
    }
    Ok(if report.new_violations.is_empty() {
        EXIT_CLEAN
    } else {
        EXIT_VIOLATIONS
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match parse_args(&argv).and_then(|args| run(&args)) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("soteria-lint: {e}");
            eprintln!("{USAGE}");
            EXIT_ERROR
        }
    };
    std::process::exit(code);
}
