#![warn(missing_docs)]

//! `soteria-lint`: the workspace's determinism & hermeticity linter.
//!
//! The repo's core promise — bit-identical campaign artifacts, traces,
//! and recovery sweeps at any thread count — only holds if a handful of
//! invariants hold *everywhere*: no wall clocks in deterministic paths,
//! no hash-ordered containers feeding snapshots, no randomness outside
//! `soteria-rt::rng`, no external crates in the hermetic build, every
//! `unsafe` documented, no panicking shortcuts in library code. This
//! crate turns those project rules into machine-checked ones.
//!
//! * [`rules`] — the rule catalog (D1, D2, D3, H1, U1, P1, A1 in the
//!   per-file **lex** pass; C1, C2, C3, U2 in the workspace **conc**
//!   pass) and the per-file scanners, built on the literal-aware
//!   [`lexer`] so rules never fire inside strings or comments.
//! * [`ast`] / [`callgraph`] / [`conc`] — the function-level analyzer:
//!   token trees, the intra-workspace call graph, per-function lock
//!   summaries, and the interprocedural lock-order (C1), blocking-call
//!   (C2), condvar-loop (C3), and raw-syscall-containment (U2) rules.
//! * [`baseline`] — the checked-in grandfather list; CI fails only on
//!   violations not in the baseline.
//! * Suppression: end the offending line (or the comment line above it)
//!   with ``// lint:allow(D2, reason why this site is sound)``. The
//!   reason is mandatory; rule A1 flags reason-less or unknown-rule
//!   allows.
//!
//! Run it locally with `cargo run -p soteria-lint -- --workspace`.
//! Exit codes are pinned: 0 clean, 1 new violations, 2 usage/IO error.

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod conc;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use rules::{lint_cargo_toml, lint_rust_source, Rule, Violation};

/// Exit code when no new violations were found.
pub const EXIT_CLEAN: i32 = 0;
/// Exit code when new violations were found.
pub const EXIT_VIOLATIONS: i32 = 1;
/// Exit code for usage, IO, or baseline errors.
pub const EXIT_ERROR: i32 = 2;

/// A linter failure (not a violation — those are data, not errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintError {
    /// Bad command line.
    Usage(String),
    /// A file or directory could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The baseline file is unreadable or malformed.
    Baseline {
        /// The baseline path.
        path: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Usage(msg) => write!(f, "usage error: {msg}"),
            LintError::Io { path, message } => write!(f, "io error: {path}: {message}"),
            LintError::Baseline { path, message } => {
                write!(f, "baseline error: {path}: {message}")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Directory names never descended into during the workspace walk.
/// `fixtures` holds the linter's own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "fixtures", "results", "docs"];

/// Everything one workspace lint run produced.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Files scanned, workspace-relative, sorted.
    pub checked_files: Vec<String>,
    /// Violations not covered by the baseline.
    pub new_violations: Vec<Violation>,
    /// Violations grandfathered by the baseline.
    pub baselined: Vec<Violation>,
}

impl LintReport {
    /// Machine-readable report (schema `soteria-lint/v2`; v2 added the
    /// per-violation `pass` field distinguishing the per-file lex rules
    /// from the workspace concurrency rules).
    pub fn to_json(&self) -> soteria_rt::json::Json {
        use soteria_rt::json::Json;
        let violation = |v: &Violation, baselined: bool| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(v.rule.name().to_string())),
                ("pass".to_string(), Json::Str(v.rule.pass().to_string())),
                ("path".to_string(), Json::Str(v.path.clone())),
                ("line".to_string(), Json::Num(v.line as f64)),
                ("snippet".to_string(), Json::Str(v.snippet.clone())),
                ("message".to_string(), Json::Str(v.message.clone())),
                ("baselined".to_string(), Json::Bool(baselined)),
            ])
        };
        let mut violations: Vec<Json> =
            self.new_violations.iter().map(|v| violation(v, false)).collect();
        violations.extend(self.baselined.iter().map(|v| violation(v, true)));
        Json::Obj(vec![
            ("tool".to_string(), Json::Str("soteria-lint/v2".to_string())),
            (
                "checked_files".to_string(),
                Json::Num(self.checked_files.len() as f64),
            ),
            (
                "new_violations".to_string(),
                Json::Num(self.new_violations.len() as f64),
            ),
            (
                "baselined".to_string(),
                Json::Num(self.baselined.len() as f64),
            ),
            ("violations".to_string(), Json::Arr(violations)),
        ])
    }
}

/// Collects the lintable files (`*.rs` and `Cargo.toml`) under `root`,
/// as sorted workspace-relative `/`-separated paths.
///
/// # Errors
///
/// Returns [`LintError::Io`] if a directory cannot be read.
pub fn collect_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let io_err = |p: &Path, e: std::io::Error| LintError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints every Rust source and `Cargo.toml` under `root` and splits the
/// findings against `baseline`.
///
/// # Errors
///
/// Returns [`LintError::Io`] if a file cannot be read.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> Result<LintReport, LintError> {
    let files = collect_files(root)?;
    let mut violations = Vec::new();
    let mut rust_sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        let text = read_rel(root, rel)?;
        if rel.ends_with("Cargo.toml") {
            violations.extend(lint_cargo_toml(rel, &text));
        } else {
            violations.extend(lint_rust_source(rel, &text));
            rust_sources.push((rel.clone(), text));
        }
    }
    // The conc pass needs the whole workspace at once: lock summaries
    // propagate across files through the call graph.
    violations.extend(conc::lint_concurrency(&rust_sources));
    let (new_violations, baselined) = baseline.partition(violations);
    Ok(LintReport {
        checked_files: files,
        new_violations,
        baselined,
    })
}

/// Lints just `paths` (workspace-relative or absolute) with the lex
/// pass — the sub-second `--changed` mode for pre-commit hooks. Paths
/// that no longer exist (deleted in the change) or are not lintable
/// (`*.rs` / `Cargo.toml`) are skipped. The conc pass is workspace-wide
/// by nature and does not run here.
///
/// # Errors
///
/// Returns [`LintError::Io`] if an existing file cannot be read.
pub fn lint_files(
    root: &Path,
    paths: &[String],
    baseline: &Baseline,
) -> Result<LintReport, LintError> {
    let mut checked = Vec::new();
    let mut violations = Vec::new();
    for given in paths {
        let rel = given.replace('\\', "/");
        if !(rel.ends_with(".rs") || rel.ends_with("Cargo.toml")) {
            continue;
        }
        let full: PathBuf = if Path::new(given).is_absolute() {
            PathBuf::from(given)
        } else {
            root.join(given)
        };
        if !full.exists() {
            continue;
        }
        let text = std::fs::read_to_string(&full).map_err(|e| LintError::Io {
            path: full.display().to_string(),
            message: e.to_string(),
        })?;
        if rel.ends_with("Cargo.toml") {
            violations.extend(lint_cargo_toml(&rel, &text));
        } else {
            violations.extend(lint_rust_source(&rel, &text));
        }
        checked.push(rel);
    }
    checked.sort();
    let (new_violations, baselined) = baseline.partition(violations);
    Ok(LintReport {
        checked_files: checked,
        new_violations,
        baselined,
    })
}

fn read_rel(root: &Path, rel: &str) -> Result<String, LintError> {
    let full: PathBuf = root.join(rel);
    std::fs::read_to_string(&full).map_err(|e| LintError::Io {
        path: full.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_strings_are_pinned() {
        assert_eq!(
            LintError::Usage("unknown flag '--x'".to_string()).to_string(),
            "usage error: unknown flag '--x'"
        );
        assert_eq!(
            LintError::Io {
                path: "a/b.rs".to_string(),
                message: "denied".to_string()
            }
            .to_string(),
            "io error: a/b.rs: denied"
        );
        assert_eq!(
            LintError::Baseline {
                path: "lint-baseline.json".to_string(),
                message: "missing 'entries' array".to_string()
            }
            .to_string(),
            "baseline error: lint-baseline.json: missing 'entries' array"
        );
    }

    #[test]
    fn exit_codes_are_pinned() {
        assert_eq!(EXIT_CLEAN, 0);
        assert_eq!(EXIT_VIOLATIONS, 1);
        assert_eq!(EXIT_ERROR, 2);
    }
}
