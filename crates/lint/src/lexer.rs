//! A line-oriented Rust lexer for static analysis.
//!
//! Splits a source file into per-line **code** and **comment** channels
//! so rules never fire on tokens inside string literals, character
//! literals, or comments:
//!
//! * `code` holds the line's source with comments removed and the
//!   *contents* of string/char literals blanked (the delimiting quotes
//!   remain, so `"HashMap"` lexes to `""`).
//! * `comment` holds the raw comment text on that line, including its
//!   `//` / `///` / `/*` prefix, so rules can distinguish plain comments
//!   from doc comments and parse `lint:allow(...)` suppressions.
//!
//! The lexer understands line comments, nested block comments, string
//! escapes, raw strings (`r#"..."#`, any hash depth), byte strings, char
//! literals (including escapes), and tells lifetimes (`'a`) apart from
//! char literals (`'a'`).
//!
//! [`test_regions`] additionally marks the lines inside
//! `#[cfg(test)] { ... }` items (test modules and functions) so rules can
//! exempt test code. Out-of-line `#[cfg(test)] mod x;` declarations are
//! not followed into their file — the workspace has none, and the
//! path-based test classification in `rules` covers `tests/` trees.

/// One source line, split into code and comment channels.
#[derive(Clone, Debug, Default)]
pub struct SourceLine {
    /// Source code with comments removed and literal contents blanked.
    pub code: String,
    /// Raw comment text appearing on this line (prefix included).
    pub comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lexes `source` into per-line code/comment channels.
///
/// Always returns at least one line; line *n* of the file is index
/// `n - 1`.
pub fn lex(source: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<SourceLine> = vec![SourceLine::default()];
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            lines.push(SourceLine::default());
            i += 1;
            continue;
        }
        let at = |k: usize| chars.get(i + k).copied();
        let Some(line) = lines.last_mut() else {
            break; // unreachable: `lines` starts non-empty
        };
        match mode {
            Mode::Code => {
                if c == '/' && at(1) == Some('/') {
                    mode = Mode::LineComment;
                    line.comment.push_str("//");
                    i += 2;
                } else if c == '/' && at(1) == Some('*') {
                    mode = Mode::BlockComment(1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(len) = raw_ident(&chars, i) {
                    // A raw identifier (`r#type`, `r#match`): consume it
                    // whole so the `r#` prefix is never confused with a
                    // raw-string opener and the identifier never matches
                    // a keyword/token search (`#` glues it together).
                    for k in 0..len {
                        line.code.push(chars[i + k]);
                    }
                    i += len;
                } else if let Some(skip) = raw_string_prefix(&chars, i) {
                    // r"...", r#"..."#, br"...", br#"..."# — skip is the
                    // prefix length up to and including the opening quote;
                    // the hash count is skip minus prefix letters and quote.
                    let letters = if c == 'b' { 2 } else { 1 };
                    let hashes = (skip - letters - 1) as u32;
                    line.code.push('"');
                    mode = Mode::RawStr(hashes);
                    i += skip;
                } else if c == 'b' && at(1) == Some('"') {
                    line.code.push_str("b\"");
                    mode = Mode::Str;
                    i += 2;
                } else if c == '\'' {
                    i += consume_quote(&chars, i, &mut line.code);
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && at(1) == Some('/') {
                    line.comment.push_str("*/");
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && at(1) == Some('*') {
                    line.comment.push_str("/*");
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // escaped char, never closes the literal
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && (1..=hashes as usize).all(|k| at(k) == Some('#')) {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

/// If position `i` starts a raw identifier (`r#type`, `r#match`),
/// returns its total length (`r#` plus the identifier). Raw identifiers
/// are *not* raw-string openers: `r#` must be followed by an identifier
/// start, and the `r` must not continue a preceding identifier.
fn raw_ident(chars: &[char], i: usize) -> Option<usize> {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    if chars.get(i) != Some(&'r') || chars.get(i + 1) != Some(&'#') {
        return None;
    }
    let first = *chars.get(i + 2)?;
    if !(first.is_alphabetic() || first == '_') {
        return None;
    }
    let mut j = i + 3;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    Some(j - i)
}

/// If position `i` starts a raw (byte) string prefix (`r"`, `r#"`,
/// `br##"`, ...), returns the prefix length including the opening quote.
fn raw_string_prefix(chars: &[char], i: usize) -> Option<usize> {
    // A raw-string `r` must not continue an identifier (`var"` is not
    // valid Rust, but `operand` contains an interior `r`).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(j + 1 - i)
    } else {
        None
    }
}

/// Consumes a `'` at position `i`: either a char literal (contents
/// blanked to `''`) or a lifetime (kept in code). Returns chars consumed.
fn consume_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            code.push_str("''");
            j.saturating_sub(i) + 1
        }
        Some(ch) if chars.get(i + 2) == Some(&'\'') && *ch != '\'' => {
            // Plain char literal 'x'.
            code.push_str("''");
            3
        }
        Some(ch) if ch.is_alphabetic() || *ch == '_' => {
            // A lifetime ('a, 'static) — keep the tick in the code
            // channel; the identifier follows normally.
            code.push('\'');
            1
        }
        _ => {
            code.push('\'');
            1
        }
    }
}

/// Marks lines inside `#[cfg(test)]`-gated braces (test modules and
/// functions). `lines[k]` is in a test region iff the returned vector's
/// element `k` is true.
pub fn test_regions(lines: &[SourceLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Depth at which a pending #[cfg(test)] attribute was seen, waiting
    // for the `{` that opens the gated item.
    let mut pending: Option<i64> = None;
    // Brace depths of currently-open test regions (nested is fine).
    let mut regions: Vec<i64> = Vec::new();
    for (k, line) in lines.iter().enumerate() {
        if !regions.is_empty() {
            in_test[k] = true;
        }
        let code: Vec<char> = line.code.chars().collect();
        let mut j = 0usize;
        while j < code.len() {
            if starts_with_at(&code, j, "cfg(test") || starts_with_at(&code, j, "cfg(any(test") {
                pending = Some(depth);
            }
            match code[j] {
                '{' => {
                    if pending.take().is_some() {
                        regions.push(depth);
                        in_test[k] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                // `#[cfg(test)] use ...;` — attribute spent without
                // opening a brace at its own depth.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
            j += 1;
        }
    }
    in_test
}

fn starts_with_at(chars: &[char], at: usize, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(k, p)| chars.get(at + k) == Some(&p))
}

/// True if `code` contains `token` as a standalone path segment /
/// identifier (neighbors are not identifier characters).
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first standalone occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let tok = token.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        // Boundaries only matter where the token's own edge is an
        // identifier character (`rand::` legitimately continues into an
        // identifier on the right). An `r#` immediately before the match
        // makes it a raw identifier (`r#match` is not the keyword
        // `match`), which never counts as the token.
        let raw_prefixed = start >= 2
            && bytes[start - 1] == b'#'
            && bytes[start - 2] == b'r'
            && (start == 2 || !ident(bytes[start - 3]));
        let before_ok =
            !ident(tok[0]) || start == 0 || (!ident(bytes[start - 1]) && !raw_prefixed);
        let after_ok =
            !ident(tok[tok.len() - 1]) || end >= bytes.len() || !ident(bytes[end]);
        if before_ok && after_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let c = code_of(r#"let x = "HashMap::new()"; y();"#);
        assert_eq!(c, vec![r#"let x = ""; y();"#]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = code_of(r##"let x = r#"Instant::now() "quoted" "#; f();"##);
        assert_eq!(c, vec![r#"let x = ""; f();"#]);
    }

    #[test]
    fn line_comments_split_off() {
        let lines = lex("foo(); // HashMap here\nbar();");
        assert_eq!(lines[0].code, "foo(); ");
        assert_eq!(lines[0].comment, "// HashMap here");
        assert_eq!(lines[1].code, "bar();");
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("a(); /* outer /* inner */ still */ b();");
        assert_eq!(lines[0].code, "a();  b();");
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let lines = lex("a();\n/* one\ntwo HashMap\n*/\nb();");
        assert_eq!(lines[2].code, "");
        assert!(lines[2].comment.contains("HashMap"));
        assert_eq!(lines[4].code, "b();");
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = code_of("let q = 'a'; fn f<'a>(x: &'a str) { g('\\n'); }");
        assert_eq!(c, vec!["let q = ''; fn f<'a>(x: &'a str) { g(''); }"]);
    }

    #[test]
    fn string_escapes_do_not_close_early() {
        let c = code_of(r#"let s = "a\"HashMap\""; t();"#);
        assert_eq!(c, vec![r#"let s = ""; t();"#]);
    }

    #[test]
    fn cfg_test_regions_cover_module_bodies() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}";
        let lines = lex(src);
        let t = test_regions(&lines);
        assert_eq!(t, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_use_statement_does_not_open_a_region() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn lib() {\n}";
        let t = test_regions(&lex(src));
        assert!(t.iter().all(|&x| !x));
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(has_token("thread::sleep(d)", "thread::sleep"));
        assert!(!has_token("operand::sleep(d)", "rand::"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        // `r#type` must lex as an identifier, not open a raw string that
        // swallows the rest of the line.
        let c = code_of("let r#type = 1; after();");
        assert_eq!(c, vec!["let r#type = 1; after();"]);
        // A raw identifier and a raw string can share a line.
        let c = code_of(r##"let r#match = r#"HashMap"#; tail();"##);
        assert_eq!(c, vec![r#"let r#match = ""; tail();"#]);
    }

    #[test]
    fn raw_identifiers_never_match_their_keyword_token() {
        assert!(!has_token("let r#match = 1;", "match"));
        assert!(!has_token("fn r#unsafe() {}", "unsafe"));
        assert!(!has_token("type r#HashMap = u8;", "HashMap"));
        assert!(has_token("match x { _ => r#match }", "match"));
    }

    #[test]
    fn nested_generics_closing_shift_is_not_special() {
        let c = code_of("let v: Vec<Vec<u8>> = x >> 2;");
        assert_eq!(c, vec!["let v: Vec<Vec<u8>> = x >> 2;"]);
        assert!(has_token(&c[0], "Vec"));
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        let c = code_of(r####"let s = r##"one "# two"##; f();"####);
        assert_eq!(c, vec![r#"let s = ""; f();"#]);
        // An inner quote+hash shorter than the opener must not close it.
        let c = code_of("let s = r##\"a\"# b\"##;\nnext();");
        assert_eq!(c, vec!["let s = \"\";", "next();"]);
    }

    #[test]
    fn lifetimes_inside_turbofish_survive() {
        let c = code_of("f::<'a, T>(x); let y: &'static str = s;");
        assert_eq!(c, vec!["f::<'a, T>(x); let y: &'static str = s;"]);
    }

    #[test]
    fn mod_tests_opened_mid_file_is_tracked() {
        let src = "fn a() {\n    body();\n}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { a(); }\n}\nfn tail() {}";
        let t = test_regions(&lex(src));
        assert_eq!(
            t,
            vec![false, false, false, false, true, true, true, true, true, false]
        );
    }
}
