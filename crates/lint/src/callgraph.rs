//! Call-site extraction and the intra-workspace call graph.
//!
//! A call site is any `path::name(`, `name(`, or `.name(` token pattern
//! in a function body (macro invocations never match — the `!` sits
//! between the name and the paren). Sites resolve to workspace
//! functions by name:
//!
//! * `self.method(...)` prefers a method of the caller's own `impl`
//!   type;
//! * path calls match functions whose qualified name ends with the
//!   written path;
//! * anything still ambiguous (several same-named functions, trait
//!   objects, closures) resolves to **no** edge — the conc pass treats
//!   unresolved calls as non-blocking and lock-free, a documented
//!   soundness limit.
//!
//! For the U2 reachability question ("can this function reach a raw
//! syscall?") the graph also offers *may*-edges restricted to the same
//! file: over-approximation is the right direction for reachability.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::ast::{FileAst, FnItem, Tok};

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Path segments as written (`rt::json::parse` → 3 segments; a
    /// method call has exactly one).
    pub path: Vec<String>,
    /// True for `.name(...)` method calls.
    pub method: bool,
    /// Receiver field chain for method calls (`shared.state.lock()` →
    /// `["shared", "state"]`); `["#expr"]` when the receiver is a call
    /// result or other non-path expression.
    pub recv: Vec<String>,
    /// True if the argument list is `()`.
    pub args_empty: bool,
    /// Token index of the opening paren.
    pub paren: usize,
    /// Token index of the callee name.
    pub name_at: usize,
    /// 0-based line of the callee name.
    pub line: usize,
}

impl CallSite {
    /// The callee's simple name.
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// Keywords and constructors that look like calls but are not.
const NOT_CALLEES: [&str; 18] = [
    "if", "while", "for", "match", "loop", "return", "let", "else", "in", "move", "as",
    "break", "continue", "unsafe", "Some", "Ok", "Err", "None",
];

/// Extracts the call sites in `body`, in token order.
pub fn call_sites(toks: &[Tok], body: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in body.clone() {
        if toks[i].text != "(" {
            continue;
        }
        // Walk back over an optional turbofish `::<...>`.
        let mut j = i;
        if j > 0 && toks[j - 1].text == ">" {
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                match toks[k].text.as_str() {
                    ">" => depth += 1,
                    "<" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if k == 0 || k <= body.start {
                    break;
                }
                k -= 1;
            }
            if k > body.start && toks[k].text == "<" && toks[k - 1].text == "::" {
                j = k - 1;
            } else {
                continue;
            }
        }
        // Collect `seg(::seg)*` right-to-left.
        let mut path: Vec<String> = Vec::new();
        let mut name_at = None;
        while j > body.start && toks[j - 1].is_ident() {
            path.push(toks[j - 1].text.clone());
            name_at.get_or_insert(j - 1);
            j -= 1;
            if j > body.start && toks[j - 1].text == "::" {
                j -= 1;
            } else {
                break;
            }
        }
        let Some(name_at) = name_at else {
            continue;
        };
        path.reverse();
        if path.len() == 1 && NOT_CALLEES.contains(&path[0].as_str()) {
            continue;
        }
        let before = (j > body.start).then(|| toks[j - 1].text.as_str());
        if before == Some("fn") {
            continue; // definition, not a call
        }
        let method = before == Some(".");
        let mut recv = Vec::new();
        if method {
            // Walk the dotted receiver chain leftward.
            let mut k = j - 1; // the `.`
            loop {
                if k <= body.start {
                    break;
                }
                let prev = &toks[k - 1];
                if prev.is_ident() {
                    recv.push(prev.text.clone());
                    k -= 1;
                    if k > body.start && toks[k - 1].text == "." {
                        k -= 1;
                        continue;
                    }
                } else if prev.text == ")" || prev.text == "]" || prev.text == "?" {
                    recv.push("#expr".to_string());
                }
                break;
            }
            recv.reverse();
            // Method paths are a single segment; a turbofish path like
            // `.collect::<V>()` already collapsed to one.
            path = vec![path.pop().unwrap_or_default()];
        }
        let args_empty = toks.get(i + 1).map(|t| t.text.as_str()) == Some(")");
        out.push(CallSite {
            path,
            method,
            recv,
            args_empty,
            paren: i,
            name_at,
            line: toks[name_at].line,
        });
    }
    out
}

/// A function in the flattened workspace graph.
#[derive(Clone, Debug)]
pub struct GraphFn {
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    /// The function item (body token range indexes that file's `toks`).
    pub item: FnItem,
}

/// The workspace call graph: every function from every file, indexed
/// for name resolution.
pub struct CallGraph {
    /// Flattened functions; a node id is an index here.
    pub fns: Vec<GraphFn>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Flattens `files` into a graph.
    pub fn build(files: &[FileAst]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for item in &file.fns {
                by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(fns.len());
                fns.push(GraphFn {
                    file: fi,
                    item: item.clone(),
                });
            }
        }
        CallGraph { fns, by_name }
    }

    /// Resolves `site` (called from `caller`) to a unique workspace
    /// function, or `None` when ambiguous or external.
    pub fn resolve(&self, caller: usize, site: &CallSite) -> Option<usize> {
        let candidates = self.by_name.get(site.name())?;
        if site.method {
            if site.recv.first().map(String::as_str) == Some("self") {
                if let Some(ty) = &self.fns[caller].item.impl_type {
                    let same: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| self.fns[c].item.impl_type.as_ref() == Some(ty))
                        .collect();
                    if let [one] = same[..] {
                        return Some(one);
                    }
                }
            }
            return match candidates[..] {
                [one] => Some(one),
                _ => None,
            };
        }
        // Path call: the written path must be a suffix of the qualified
        // name's segments.
        let matches: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| {
                let qual: Vec<&str> = self.fns[c].item.qual.split("::").collect();
                let path: Vec<&str> = site.path.iter().map(String::as_str).collect();
                qual.len() >= path.len() && qual[qual.len() - path.len()..] == path[..]
            })
            .collect();
        match matches[..] {
            [one] => Some(one),
            _ => None,
        }
    }

    /// All same-named candidates **in the same file** as `caller` —
    /// the over-approximate edges used for U2 syscall reachability.
    pub fn may_resolve_same_file(&self, caller: usize, site: &CallSite) -> Vec<usize> {
        let file = self.fns[caller].file;
        self.by_name
            .get(site.name())
            .map(|c| {
                c.iter()
                    .copied()
                    .filter(|&i| self.fns[i].file == file)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;
    use crate::lexer;

    fn ast_of(src: &str) -> FileAst {
        parse_file("crates/x/src/lib.rs", &lexer::lex(src))
    }

    #[test]
    fn sites_cover_free_path_method_and_turbofish_calls() {
        let ast = ast_of(
            "fn f() {\n    helper();\n    rt::json::parse(s);\n    conn.flush();\n    xs.iter().collect::<Vec<_>>();\n    macro_rules!(nope);\n    if (a) {}\n}\n",
        );
        let body = ast.fns[0].body.clone();
        let sites = call_sites(&ast.toks, body);
        let names: Vec<&str> = sites.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["helper", "parse", "flush", "iter", "collect"]);
        assert_eq!(sites[1].path, vec!["rt", "json", "parse"]);
        assert!(sites[2].method);
        assert_eq!(sites[2].recv, vec!["conn"]);
        assert!(sites[4].method, "turbofish method call");
        assert_eq!(sites[4].recv, vec!["#expr"]);
        assert!(sites[0].args_empty);
        assert!(!sites[1].args_empty);
    }

    #[test]
    fn resolution_prefers_self_methods_and_unique_suffixes() {
        let ast = ast_of(
            "mod a {\n    pub struct T;\n    impl T {\n        pub fn go(&self) { self.step(); other::dup(); }\n        fn step(&self) {}\n    }\n}\nmod other {\n    pub fn dup() {}\n}\nmod noise {\n    pub fn dup() {}\n}\n",
        );
        let graph = CallGraph::build(std::slice::from_ref(&ast));
        let go = graph
            .fns
            .iter()
            .position(|f| f.item.name == "go")
            .expect("go exists");
        let sites = call_sites(&ast.toks, graph.fns[go].item.body.clone());
        assert_eq!(sites.len(), 2);
        let step = graph.resolve(go, &sites[0]).expect("self.step resolves");
        assert_eq!(graph.fns[step].item.qual, "a::T::step");
        let dup = graph.resolve(go, &sites[1]).expect("other::dup resolves");
        assert_eq!(graph.fns[dup].item.qual, "other::dup");
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let ast = ast_of(
            "mod a { pub fn dup() {} }\nmod b { pub fn dup() {} }\nfn f() { dup(); }\n",
        );
        let graph = CallGraph::build(std::slice::from_ref(&ast));
        let f = graph.fns.iter().position(|x| x.item.name == "f").expect("f");
        let sites = call_sites(&ast.toks, graph.fns[f].item.body.clone());
        assert_eq!(graph.resolve(f, &sites[0]), None);
    }
}
