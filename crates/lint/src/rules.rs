//! The rule catalog and the per-file scanners.
//!
//! Every rule is named, individually suppressible with an inline
//! `// lint:allow(RULE, reason)` comment, and scoped to the code it
//! protects (test code — `tests/`, `benches/`, `examples/` trees and
//! `#[cfg(test)]` regions — is exempt from the determinism and panic
//! rules; `unsafe` documentation is required everywhere).
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no wall-clock (`SystemTime`, `Instant::now`, `thread::sleep`) outside the timing allowlist |
//! | D2   | no hash-ordered containers (`HashMap`/`HashSet`) in crates feeding deterministic artifacts |
//! | D3   | no randomness source outside `soteria-rt::rng` |
//! | H1   | no external (non-path, non-workspace) dependency in any `Cargo.toml` |
//! | U1   | every `unsafe` carries a `// SAFETY:` comment |
//! | P1   | no `unwrap()` / `expect()` in library code of `core`/`nvm`/`crypto`/`ecc` |
//! | A1   | every `lint:allow` names a known rule and gives a reason |
//! | C1   | lock-acquisition order is cycle-free across the workspace |
//! | C2   | no lock guard held across a blocking operation |
//! | C3   | `Condvar::wait` sits inside a predicate loop |
//! | U2   | raw syscalls reachable only through the audited `Poller` API |
//!
//! The D/H/U1/P1/A1 rules run in the per-file **lex** pass; the C rules
//! and U2 run in the whole-workspace **conc** pass (see [`crate::conc`]).

use crate::lexer::{self, SourceLine};

/// A named lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time source in deterministic code.
    D1,
    /// Hash-ordered container in a deterministic crate.
    D2,
    /// Nondeterministic randomness source outside `rt::rng`.
    D3,
    /// External dependency in a `Cargo.toml`.
    H1,
    /// `unsafe` without a `SAFETY:` comment.
    U1,
    /// `unwrap()`/`expect()` in library code.
    P1,
    /// Malformed `lint:allow` suppression.
    A1,
    /// Cycle in the workspace lock-acquisition order graph.
    C1,
    /// Lock guard held across a blocking operation.
    C2,
    /// `Condvar::wait` outside a predicate loop.
    C3,
    /// Raw syscall reachable outside the audited `Poller` API.
    U2,
}

impl Rule {
    /// All rules, in catalog order.
    pub const ALL: [Rule; 11] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::H1,
        Rule::U1,
        Rule::P1,
        Rule::A1,
        Rule::C1,
        Rule::C2,
        Rule::C3,
        Rule::U2,
    ];

    /// The rule's catalog name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::H1 => "H1",
            Rule::U1 => "U1",
            Rule::P1 => "P1",
            Rule::A1 => "A1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::C3 => "C3",
            Rule::U2 => "U2",
        }
    }

    /// Which analysis pass produces the rule's findings: `"lex"` for the
    /// per-file token rules, `"conc"` for the whole-workspace
    /// concurrency/call-graph rules.
    pub fn pass(self) -> &'static str {
        match self {
            Rule::C1 | Rule::C2 | Rule::C3 | Rule::U2 => "conc",
            _ => "lex",
        }
    }

    /// Parses a catalog name.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed source line (baseline matching key).
    pub snippet: String,
    /// Pinned human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// D1 timing allowlist: the only non-test code allowed to read wall
/// clocks or sleep. `rt::bench` and the `rt::obs` timers measure real
/// time by design (and are quarantined from deterministic snapshots);
/// the service and CLI own socket deadlines and poll timeouts.
const D1_ALLOWED: [&str; 4] = [
    "crates/rt/src/bench.rs",
    "crates/rt/src/obs.rs",
    "crates/svc/src/",
    "crates/cli/src/",
];

/// D2 scope: crates whose state feeds deterministic snapshots, campaign
/// JSON, or NDJSON traces.
const D2_CRATES: [&str; 3] = ["nvm", "core", "faultsim"];

/// D3 allowlist: the workspace's one sanctioned randomness source.
const D3_ALLOWED: [&str; 1] = ["crates/rt/src/rng.rs"];

/// P1 scope: library crates whose panics would take down a campaign
/// worker or the service.
const P1_CRATES: [&str; 4] = ["core", "nvm", "crypto", "ecc"];

const D1_TOKENS: [&str; 3] = ["SystemTime", "Instant::now", "thread::sleep"];
const D2_TOKENS: [&str; 2] = ["HashMap", "HashSet"];
const D3_TOKENS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "DefaultHasher",
    "rand::",
];

/// How far up a `SAFETY:` comment may sit above its `unsafe` (through
/// attributes and doc comments).
const U1_LOOKBACK: usize = 12;

/// The crate a workspace-relative path belongs to (`crates/nvm/...` →
/// `nvm`); `None` for the umbrella package at the root.
pub fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// True for paths whose whole tree is test/bench/example code.
pub fn is_test_path(rel: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
}

fn path_allowed(rel: &str, list: &[&str]) -> bool {
    list.iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
}

/// An inline suppression parsed from a comment.
struct Allow {
    rule: Rule,
}

/// Parses the `lint:allow(RULE, reason)` occurrences in one comment.
/// Returns the valid allows and whether a malformed attempt was seen.
///
/// To count as an *attempt* (and thus be eligible for A1), the token
/// after `lint:allow(` must look like a rule name — an ASCII capital
/// followed by a digit. Prose such as ``lint:allow(<RULE>, <reason>)``
/// in documentation is ignored.
fn parse_allows(comment: &str) -> (Vec<Allow>, bool) {
    let mut allows = Vec::new();
    let mut malformed = false;
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        let looks_like_rule = name.len() == 2
            && name.as_bytes()[0].is_ascii_uppercase()
            && name.as_bytes()[1].is_ascii_digit();
        if !looks_like_rule {
            continue;
        }
        let after = &rest[name.len()..];
        let Some(close) = after.rfind(')') else {
            malformed = true;
            continue;
        };
        let body = &after[..close];
        let reason = body.strip_prefix(',').map(str::trim).unwrap_or("");
        match Rule::parse(&name) {
            Some(rule) if !reason.is_empty() => allows.push(Allow { rule }),
            _ => malformed = true,
        }
    }
    (allows, malformed)
}

/// Per-file scan state shared by the lex rules and (for suppression and
/// test-region bookkeeping) the conc pass.
pub(crate) struct FileScan<'a> {
    rel: &'a str,
    /// Lexed code/comment channels, one per source line.
    pub(crate) lines: Vec<SourceLine>,
    /// `in_test[k]` marks 0-based line `k` as test code.
    pub(crate) in_test: Vec<bool>,
    raw_lines: Vec<&'a str>,
    /// allows[k] = rules suppressed for line k (0-based).
    allows: Vec<Vec<Rule>>,
}

impl<'a> FileScan<'a> {
    /// Lexes `source` and collects suppressions; the second return is
    /// the A1 findings (malformed `lint:allow`) seen along the way.
    pub(crate) fn new(rel: &'a str, source: &'a str) -> (Self, Vec<Violation>) {
        let lines = lexer::lex(source);
        let in_test = if is_test_path(rel) {
            vec![true; lines.len()]
        } else {
            lexer::test_regions(&lines)
        };
        let raw_lines: Vec<&str> = source.lines().collect();
        let mut allows = vec![Vec::new(); lines.len()];
        let mut violations = Vec::new();
        for (k, line) in lines.iter().enumerate() {
            if line.comment.is_empty() {
                continue;
            }
            let (parsed, malformed) = parse_allows(&line.comment);
            if malformed {
                violations.push(Violation {
                    rule: Rule::A1,
                    path: rel.to_string(),
                    line: k + 1,
                    snippet: snippet_at(&raw_lines, k),
                    message: "malformed lint:allow (expected lint:allow(RULE, reason))"
                        .to_string(),
                });
            }
            allows[k].extend(parsed.into_iter().map(|a| a.rule));
        }
        (
            Self {
                rel,
                lines,
                in_test,
                raw_lines,
                allows,
            },
            violations,
        )
    }

    /// True if `rule` is suppressed at 0-based line `k`: an allow on the
    /// same line, or on a directly-preceding run of comment-only lines.
    fn allowed(&self, k: usize, rule: Rule) -> bool {
        if self.allows[k].contains(&rule) {
            return true;
        }
        let mut j = k;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if !l.code.trim().is_empty() || l.comment.is_empty() {
                return false;
            }
            if self.allows[j].contains(&rule) {
                return true;
            }
        }
        false
    }

    /// Appends a violation at 0-based line `k` unless suppressed there.
    pub(crate) fn push(&self, out: &mut Vec<Violation>, rule: Rule, k: usize, message: String) {
        if self.allowed(k, rule) {
            return;
        }
        out.push(Violation {
            rule,
            path: self.rel.to_string(),
            line: k + 1,
            snippet: snippet_at(&self.raw_lines, k),
            message,
        });
    }
}

fn snippet_at(raw_lines: &[&str], k: usize) -> String {
    let line = raw_lines.get(k).copied().unwrap_or("");
    let trimmed = line.trim();
    let mut s: String = trimmed.chars().take(160).collect();
    if s.len() < trimmed.len() {
        s.push_str("...");
    }
    s
}

/// Lints one Rust source file. `rel` is the workspace-relative path
/// (`/`-separated); it determines crate scoping and test classification.
pub fn lint_rust_source(rel: &str, source: &str) -> Vec<Violation> {
    let (scan, mut out) = FileScan::new(rel, source);
    let krate = crate_of(rel);
    let d1_applies = !path_allowed(rel, &D1_ALLOWED);
    let d2_applies = krate.is_some_and(|c| D2_CRATES.contains(&c));
    let d3_applies = !path_allowed(rel, &D3_ALLOWED);
    let p1_applies = krate.is_some_and(|c| P1_CRATES.contains(&c));

    for k in 0..scan.lines.len() {
        let code = scan.lines[k].code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let in_test = scan.in_test[k];

        if !in_test {
            if d1_applies {
                for tok in D1_TOKENS {
                    if lexer::has_token(code, tok) {
                        scan.push(
                            &mut out,
                            Rule::D1,
                            k,
                            format!("wall-clock time source `{tok}` in deterministic code"),
                        );
                        break;
                    }
                }
            }
            if d2_applies {
                for tok in D2_TOKENS {
                    if lexer::has_token(code, tok) {
                        scan.push(
                            &mut out,
                            Rule::D2,
                            k,
                            format!(
                                "hash-ordered `{tok}` in a deterministic crate \
                                 (use BTreeMap/BTreeSet or an indexed structure)"
                            ),
                        );
                        break;
                    }
                }
            }
            if d3_applies {
                for tok in D3_TOKENS {
                    if lexer::has_token(code, tok) {
                        scan.push(
                            &mut out,
                            Rule::D3,
                            k,
                            format!(
                                "randomness source `{tok}` outside soteria-rt::rng"
                            ),
                        );
                        break;
                    }
                }
            }
            if p1_applies {
                for (tok, shown) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
                    if code.contains(tok) {
                        scan.push(
                            &mut out,
                            Rule::P1,
                            k,
                            format!(
                                "`{shown}` in library code (return an error, or document \
                                 the invariant with lint:allow)"
                            ),
                        );
                        break;
                    }
                }
            }
        }

        // U1 applies everywhere, test code included.
        if lexer::has_token(code, "unsafe") && !u1_documented(&scan, k) {
            scan.push(
                &mut out,
                Rule::U1,
                k,
                "unsafe without a `// SAFETY:` comment".to_string(),
            );
        }
    }
    out
}

/// True if the `unsafe` on 0-based line `k` has a `SAFETY:` comment on
/// the same line or on the contiguous run of comment/attribute lines
/// directly above it.
fn u1_documented(scan: &FileScan<'_>, k: usize) -> bool {
    if scan.lines[k].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = k;
    for _ in 0..U1_LOOKBACK {
        if j == 0 {
            return false;
        }
        j -= 1;
        let l = &scan.lines[j];
        let code = l.code.trim();
        let attached = code.is_empty() || code.starts_with("#[") || code.ends_with(']');
        if !attached {
            return false;
        }
        if code.is_empty() && l.comment.is_empty() {
            return false; // blank line detaches the comment run
        }
        if l.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Lints one `Cargo.toml` for the hermetic-build policy (H1): every
/// dependency in a `[dependencies]`-like section must resolve inside the
/// workspace (`path = ...` or `workspace = true`).
pub fn lint_cargo_toml(rel: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_deps = false;
    // Section-per-dependency form: [dependencies.foo] — any line in the
    // section may satisfy the policy.
    let mut dep_section: Option<(String, usize, String, bool)> = None;
    let raw_lines: Vec<&str> = source.lines().collect();
    let flush =
        |section: &mut Option<(String, usize, String, bool)>, out: &mut Vec<Violation>| {
            if let Some((name, line, snippet, ok)) = section.take() {
                if !ok {
                    out.push(Violation {
                        rule: Rule::H1,
                        path: rel.to_string(),
                        line,
                        snippet,
                        message: format!(
                            "external dependency `{name}` (hermetic build: \
                             path or workspace entries only)"
                        ),
                    });
                }
            }
        };
    for (k, raw) in raw_lines.iter().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut dep_section, &mut out);
            let name = line.trim_matches(|c| c == '[' || c == ']');
            let segments: Vec<&str> = name.split('.').collect();
            let dep_kinds = ["dependencies", "dev-dependencies", "build-dependencies"];
            let kind_at = segments
                .iter()
                .position(|s| dep_kinds.contains(s));
            match kind_at {
                Some(i) if i + 1 < segments.len() => {
                    // [dependencies.foo] — judge the whole section.
                    in_deps = false;
                    dep_section = Some((
                        segments[i + 1..].join("."),
                        k + 1,
                        snippet_at(&raw_lines, k),
                        false,
                    ));
                }
                Some(_) => in_deps = true,
                None => in_deps = false,
            }
            continue;
        }
        if let Some(section) = &mut dep_section {
            if hermetic_value(&line) {
                section.3 = true;
            }
            continue;
        }
        if !in_deps {
            continue;
        }
        // `name = value`, `name = { ... }`, or dotted `name.key = value`.
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let name = key
            .trim()
            .trim_matches('"')
            .split('.')
            .next()
            .unwrap_or("")
            .trim_matches('"')
            .to_string();
        if name.is_empty() {
            continue;
        }
        if !hermetic_value(key) && !hermetic_value(value) {
            out.push(Violation {
                rule: Rule::H1,
                path: rel.to_string(),
                line: k + 1,
                snippet: snippet_at(&raw_lines, k),
                message: format!(
                    "external dependency `{name}` (hermetic build: \
                     path or workspace entries only)"
                ),
            });
        }
    }
    flush(&mut dep_section, &mut out);
    out
}

/// True if a dependency key or value ties the entry to the workspace.
fn hermetic_value(s: &str) -> bool {
    let squeezed: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    squeezed.contains("path=") || squeezed.contains("workspace=true") || squeezed.ends_with(".workspace")
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this workspace: no `#` inside quoted TOML strings.
    match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    }
}
