//! The whole-workspace concurrency pass: lock summaries, interprocedural
//! propagation, and the C1/C2/C3/U2 rules.
//!
//! Per function, a linear walk of the body token tree tracks which lock
//! guards are live — `let g = m.lock()…` bindings, statement-scoped
//! temporaries, `if let`/`while let` guards attached to their block,
//! explicit `drop(g)`, scope-end release, and `Condvar::wait` guard
//! rebinding. A fixpoint over the call graph then propagates two facts
//! interprocedurally: *does calling this function block?* and *which
//! locks does it (transitively) acquire?*
//!
//! On top of those summaries:
//!
//! * **C1** — every acquisition of lock `B` while holding `A` (directly
//!   or through a callee that acquires `B`) adds an order edge `A → B`;
//!   any edge on a cycle of the global order graph is a violation.
//! * **C2** — a blocking operation (socket accept/connect/read/write,
//!   `Condvar::wait*`, `JoinHandle::join`, `thread::sleep`,
//!   `Poller::wait`, or a call to a function that transitively blocks)
//!   with a lock guard live is a violation; the guard a condvar wait
//!   consumes is exempt at that wait.
//! * **C3** — a `Condvar::wait` must sit inside a predicate loop
//!   (`while`/`loop`/`for`), guarding against missed-wakeup bugs.
//! * **U2** — `extern "C"` raw-syscall declarations and calls may only
//!   live in `rt::reactor`, and inside the reactor every function that
//!   can reach a raw syscall must stay behind the audited `Poller` API
//!   (its `impl Poller` methods; nothing else unrestricted-`pub`).
//!
//! Soundness limits (documented, deliberate): calls through trait
//! objects/`dyn`, function pointers, or closures passed across
//! functions resolve to no edge; guards created inside `match` arms
//! bind like statement temporaries; lock identity is the receiver's
//! field name (disambiguated by the struct-field registry when unique),
//! so same-named fields of different structs alias. Test code
//! (`tests/` trees and `#[cfg(test)]` regions) is exempt from C1/C2/C3;
//! U2 applies everywhere, like U1.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::ast::{self, FileAst, LockKind, Tok};
use crate::callgraph::{call_sites, CallGraph, CallSite};
use crate::rules::{is_test_path, FileScan, Rule, Violation};

/// The path that owns raw syscalls.
const REACTOR: &str = "crates/rt/src/reactor.rs";

/// Receiver names treated as I/O streams: a bare `.read(buf)` /
/// `.write(buf)` only counts as blocking I/O on one of these (other
/// receivers are fallible lookups like `Json::write(&mut String, …)`,
/// which never touch the network).
const STREAMY_RECEIVERS: [&str; 12] = [
    "stream", "socket", "sock", "conn", "listener", "stdin", "stdout", "stderr", "file",
    "tcp", "reader", "writer",
];

/// Method names that block on sockets, channels, or threads.
const BLOCKING_METHODS: [&str; 10] = [
    "accept",
    "connect",
    "connect_timeout",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "recv",
    "recv_timeout",
    "park",
];

/// Lock-typed struct fields and condvar fields across the workspace.
struct Registry {
    /// field name → structs declaring a lock field of that name.
    lock_fields: BTreeMap<String, BTreeSet<String>>,
    /// Names of fields declared as `Condvar`.
    condvar_fields: BTreeSet<String>,
}

impl Registry {
    fn build(asts: &[FileAst]) -> Registry {
        let mut lock_fields: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut condvar_fields = BTreeSet::new();
        for ast in asts {
            for (st, field, _kind) in &ast.lock_fields {
                lock_fields.entry(field.clone()).or_default().insert(st.clone());
            }
            for f in &ast.condvar_fields {
                condvar_fields.insert(f.clone());
            }
        }
        let _ = LockKind::Mutex; // kinds currently share one identity space
        Registry {
            lock_fields,
            condvar_fields,
        }
    }

    /// The stable identity of the lock behind a receiver chain, when
    /// nameable: `Struct.field` when the field name maps to exactly one
    /// struct, the bare name otherwise.
    fn lock_id(&self, recv: &[String]) -> Option<String> {
        let last = recv.last()?;
        if last == "#expr" || last == "self" {
            return None;
        }
        match self.lock_fields.get(last) {
            Some(structs) if structs.len() == 1 => {
                let only = structs.iter().next().map(String::as_str).unwrap_or("");
                Some(format!("{only}.{last}"))
            }
            _ => Some(last.clone()),
        }
    }
}

/// What one function does, as seen by its callers.
#[derive(Clone, Debug, Default)]
struct Summary {
    /// `Some(op)` when calling the function may block; `op` names the
    /// primitive (or callee) responsible, for messages.
    blocking: Option<String>,
    /// Locks the function acquires, transitively.
    acquires: BTreeSet<String>,
    /// Resolved workspace callees.
    calls: Vec<usize>,
}

/// One lock-order edge: `to` acquired while `from` was held.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    from: String,
    to: String,
    /// File index and 0-based line of the acquiring site.
    file: usize,
    line: usize,
}

/// A live lock guard.
struct Guard {
    name: String,
    lock: String,
    /// Dies at the next `;` (not bound by `let`).
    temp: bool,
}

/// Runs the concurrency pass over `(rel, source)` Rust files and
/// returns all C1/C2/C3/U2 findings (suppressions already applied).
pub fn lint_concurrency(files: &[(String, String)]) -> Vec<Violation> {
    let mut scans = Vec::new();
    let mut asts = Vec::new();
    for (rel, source) in files {
        let (scan, _a1) = FileScan::new(rel, source);
        let ast = ast::parse_file(rel, &scan.lines);
        scans.push(scan);
        asts.push(ast);
    }
    let registry = Registry::build(&asts);
    let graph = CallGraph::build(&asts);

    // Phase A: per-function direct facts.
    let mut summaries: Vec<Summary> = (0..graph.fns.len())
        .map(|f| {
            scan_fn(&asts, &scans, &graph, f, &registry, None, &mut Vec::new(), &mut Vec::new())
        })
        .collect();

    // Phase B: interprocedural fixpoint.
    loop {
        let mut changed = false;
        for f in 0..summaries.len() {
            let calls = summaries[f].calls.clone();
            for c in calls {
                let (callee_blocking, callee_acquires) =
                    (summaries[c].blocking.clone(), summaries[c].acquires.clone());
                let me = &mut summaries[f];
                if me.blocking.is_none() {
                    if let Some(_op) = callee_blocking {
                        me.blocking = Some(graph.fns[c].item.name.clone());
                        changed = true;
                    }
                }
                for l in callee_acquires {
                    if me.acquires.insert(l) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase C: violations and lock-order edges.
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for f in 0..graph.fns.len() {
        scan_fn(&asts, &scans, &graph, f, &registry, Some(&summaries), &mut edges, &mut out);
    }

    // C1: any edge on a cycle of the order graph.
    edges.sort();
    edges.dedup();
    let adj: BTreeMap<&str, BTreeSet<&str>> = {
        let mut m: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            m.entry(e.from.as_str()).or_default().insert(e.to.as_str());
        }
        m
    };
    let reaches = |from: &str, to: &str| {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut work: Vec<&str> = adj.get(from).map(|s| s.iter().copied().collect()).unwrap_or_default();
        while let Some(n) = work.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    work.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for e in &edges {
        if reaches(&e.to, &e.from) || e.from == e.to {
            let msg = if e.from == e.to {
                format!("lock `{}` acquired while already held (self-deadlock)", e.to)
            } else {
                format!(
                    "lock-order cycle: acquiring `{}` while holding `{}`",
                    e.to, e.from
                )
            };
            scans[e.file].push(&mut out, Rule::C1, e.line, msg);
        }
    }

    u2_pass(&asts, &scans, &graph, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Token range of a call's arguments (between the parens).
fn args_range(toks: &[Tok], paren: usize) -> Range<usize> {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(paren) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return (paren + 1)..k;
                }
            }
            _ => {}
        }
    }
    (paren + 1)..toks.len()
}

/// True if the header tokens open a `while`/`loop`/`for` body.
fn is_loop_header(toks: &[Tok], header: Range<usize>) -> bool {
    toks[header]
        .iter()
        .any(|t| matches!(t.text.as_str(), "while" | "loop" | "for"))
}

/// The guard name bound by the statement's pattern, if any: the idents
/// of the pattern left of `=`, keywords stripped. `first` picks the
/// first pattern ident (for `wait_timeout`'s `(guard, timed_out)`
/// tuple); otherwise the last wins (`let mut g`, `Ok(g)`).
fn stmt_binder(toks: &[Tok], stmt: Range<usize>, first: bool) -> Option<(String, bool)> {
    let eq = find_plain_eq(toks, stmt.clone())?;
    let pattern = &toks[stmt.start..eq];
    let conditional = pattern
        .iter()
        .any(|t| matches!(t.text.as_str(), "if" | "while"));
    let idents: Vec<&Tok> = pattern
        .iter()
        .filter(|t| {
            t.is_ident()
                && !matches!(
                    t.text.as_str(),
                    "let" | "mut" | "if" | "while" | "Ok" | "Some" | "Err" | "ref"
                )
        })
        .collect();
    let pick = if first { idents.first() } else { idents.last() };
    pick.map(|t| (t.text.clone(), conditional))
}

/// Index of a plain assignment `=` in `range` (not `==`, `=>`, `<=`,
/// `!=`, or a compound assignment).
fn find_plain_eq(toks: &[Tok], range: Range<usize>) -> Option<usize> {
    for i in range.clone() {
        if toks[i].text != "=" {
            continue;
        }
        let prev = (i > range.start).then(|| toks[i - 1].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let compound = matches!(
            prev,
            Some("=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
        );
        if !compound && next != Some("=") && next != Some(">") {
            return Some(i);
        }
    }
    None
}

/// Scans one function. With `summaries = None`, only collects the
/// function's direct facts; with summaries, emits C2/C3 violations and
/// C1 order edges.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    asts: &[FileAst],
    scans: &[FileScan<'_>],
    graph: &CallGraph,
    me: usize,
    reg: &Registry,
    summaries: Option<&[Summary]>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Violation>,
) -> Summary {
    let file = graph.fns[me].file;
    let item = &graph.fns[me].item;
    let ast = &asts[file];
    let scan = &scans[file];
    let toks = &ast.toks;
    let body = item.body.clone();
    let sites: Vec<CallSite> = call_sites(toks, body.clone());
    let site_map: BTreeMap<usize, &CallSite> = sites.iter().map(|s| (s.paren, s)).collect();

    let mut facts = Summary::default();
    let in_test = is_test_path(&ast.rel)
        || scan.in_test.get(item.line).copied().unwrap_or(false);
    let report = summaries.is_some() && !in_test;

    // (is_loop, guard indices opened in this block); index 0 is the
    // function body itself.
    let mut blocks: Vec<(bool, Vec<usize>)> = vec![(false, Vec::new())];
    let mut guards: Vec<Option<Guard>> = Vec::new();
    let mut pending_next_block: Vec<usize> = Vec::new();
    let mut stmt_start = body.start;
    // Sites inside `spawn(...)` arguments run on another thread: the
    // caller's guards are not held there, so those sites are skipped.
    let mut skip_until = body.start;

    let live = |guards: &[Option<Guard>]| -> Vec<usize> {
        guards
            .iter()
            .enumerate()
            .filter_map(|(k, g)| g.is_some().then_some(k))
            .collect()
    };

    for i in body.clone() {
        match toks[i].text.as_str() {
            "{" => {
                let is_loop = is_loop_header(toks, stmt_start..i);
                blocks.push((is_loop, std::mem::take(&mut pending_next_block)));
                stmt_start = i + 1;
                continue;
            }
            "}" => {
                if blocks.len() > 1 {
                    if let Some((_, gs)) = blocks.pop() {
                        for g in gs {
                            guards[g] = None;
                        }
                    }
                }
                stmt_start = i + 1;
                continue;
            }
            ";" => {
                for g in guards.iter_mut() {
                    if g.as_ref().is_some_and(|g| g.temp) {
                        *g = None;
                    }
                }
                stmt_start = i + 1;
                continue;
            }
            _ => {}
        }
        let Some(site) = site_map.get(&i) else {
            continue;
        };
        if i < skip_until {
            continue;
        }
        let args = args_range(toks, site.paren);
        if site.name() == "spawn" {
            skip_until = args.end;
            continue;
        }
        let arg_guards: Vec<usize> = live(&guards)
            .into_iter()
            .filter(|&g| {
                let name = guards[g].as_ref().map(|g| g.name.as_str()).unwrap_or("");
                toks[args.clone()].iter().any(|t| t.text == name)
            })
            .collect();
        let name = site.name();

        // drop(g) / mem::drop(g) kills the guards it consumes.
        if !site.method && name == "drop" {
            for g in arg_guards {
                guards[g] = None;
            }
            continue;
        }

        let held: Vec<usize> = live(&guards);
        let first_held_lock = |exclude: &[usize]| {
            held.iter()
                .find(|g| !exclude.contains(g))
                .and_then(|&g| guards[g].as_ref().map(|g| g.lock.clone()))
        };

        let is_acquire_lock = site.method && name == "lock" && site.args_empty;
        let is_acquire_rw =
            site.method && (name == "read" || name == "write") && site.args_empty;
        let is_wait =
            site.method && matches!(name, "wait" | "wait_timeout" | "wait_while");

        if is_acquire_lock || is_acquire_rw {
            let Some(lock) = reg.lock_id(&site.recv) else {
                continue;
            };
            facts.acquires.insert(lock.clone());
            if report {
                for &g in &held {
                    if let Some(h) = guards[g].as_ref() {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: lock.clone(),
                            file,
                            line: site.line,
                        });
                    }
                }
            }
            let binder = stmt_binder(toks, stmt_start..site.name_at, false);
            let idx = guards.len();
            match binder {
                Some((name, conditional)) => {
                    guards.push(Some(Guard {
                        name,
                        lock,
                        temp: false,
                    }));
                    if conditional {
                        pending_next_block.push(idx);
                    } else if let Some((_, gs)) = blocks.last_mut() {
                        gs.push(idx);
                    }
                }
                None => guards.push(Some(Guard {
                    name: String::new(),
                    lock,
                    temp: true,
                })),
            }
            continue;
        }

        if is_wait {
            let is_condvar = site
                .recv
                .last()
                .is_some_and(|r| reg.condvar_fields.contains(r))
                || !arg_guards.is_empty();
            if is_condvar {
                facts.blocking.get_or_insert_with(|| format!("Condvar::{name}"));
                if report {
                    if let Some(lock) = first_held_lock(&arg_guards) {
                        scan.push(
                            out,
                            Rule::C2,
                            site.line,
                            format!("lock `{lock}` held across blocking `Condvar::{name}`"),
                        );
                    }
                    if !blocks.iter().any(|(l, _)| *l) {
                        scan.push(
                            out,
                            Rule::C3,
                            site.line,
                            format!(
                                "`Condvar::{name}` outside a predicate loop \
                                 (wrap it in `while !condition`)"
                            ),
                        );
                    }
                }
                // The wait consumes its guard and hands back a new one.
                let lock = arg_guards
                    .first()
                    .and_then(|&g| guards[g].as_ref().map(|g| g.lock.clone()))
                    .or_else(|| reg.lock_id(&site.recv));
                for &g in &arg_guards {
                    guards[g] = None;
                }
                if let Some(lock) = lock {
                    let binder =
                        stmt_binder(toks, stmt_start..site.name_at, name == "wait_timeout");
                    let idx = guards.len();
                    match binder {
                        Some((name, conditional)) => {
                            guards.push(Some(Guard {
                                name,
                                lock,
                                temp: false,
                            }));
                            if conditional {
                                pending_next_block.push(idx);
                            } else if let Some((_, gs)) = blocks.last_mut() {
                                gs.push(idx);
                            }
                        }
                        None => guards.push(Some(Guard {
                            name: String::new(),
                            lock,
                            temp: true,
                        })),
                    }
                }
            } else {
                facts.blocking.get_or_insert_with(|| name.to_string());
                if report {
                    if let Some(lock) = first_held_lock(&[]) {
                        scan.push(
                            out,
                            Rule::C2,
                            site.line,
                            format!("lock `{lock}` held across blocking `{name}`"),
                        );
                    }
                }
            }
            continue;
        }

        // Blocking primitives.
        let blocking_op: Option<String> = if site.method {
            if BLOCKING_METHODS.contains(&name) {
                Some(name.to_string())
            } else if name == "join" && site.args_empty {
                Some("join".to_string())
            } else if (name == "read" || name == "write")
                && !site.args_empty
                && site.recv.last().is_some_and(|r| {
                    let r = r.to_ascii_lowercase();
                    STREAMY_RECEIVERS.iter().any(|s| r.contains(s))
                })
            {
                Some(name.to_string())
            } else {
                None
            }
        } else if name == "sleep"
            && site.path.len() >= 2
            && site.path[site.path.len() - 2] == "thread"
        {
            Some("thread::sleep".to_string())
        } else if name == "scope"
            && site.path.len() >= 2
            && site.path[site.path.len() - 2] == "thread"
        {
            Some("thread::scope".to_string())
        } else {
            None
        };
        if let Some(op) = blocking_op {
            facts.blocking.get_or_insert_with(|| op.clone());
            if report {
                if let Some(lock) = first_held_lock(&[]) {
                    scan.push(
                        out,
                        Rule::C2,
                        site.line,
                        format!("lock `{lock}` held across blocking `{op}`"),
                    );
                }
            }
            continue;
        }

        // Workspace callee: record the edge for the fixpoint and, with
        // summaries, apply the callee's facts at this site.
        if let Some(callee) = graph.resolve(me, site) {
            if callee != me && summaries.is_none() {
                facts.calls.push(callee);
            }
            if let Some(sums) = summaries {
                if report && !held.is_empty() {
                    if sums[callee].blocking.is_some() {
                        if let Some(lock) = first_held_lock(&[]) {
                            scan.push(
                                out,
                                Rule::C2,
                                site.line,
                                format!(
                                    "lock `{lock}` held across call to blocking `{}`",
                                    graph.fns[callee].item.name
                                ),
                            );
                        }
                    }
                    for to in &sums[callee].acquires {
                        for &g in &held {
                            if let Some(h) = guards[g].as_ref() {
                                edges.push(Edge {
                                    from: h.lock.clone(),
                                    to: to.clone(),
                                    file,
                                    line: site.line,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    facts
}

/// U2: raw syscalls stay inside `rt::reactor`, behind the `Poller` API.
fn u2_pass(
    asts: &[FileAst],
    scans: &[FileScan<'_>],
    graph: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let extern_names: BTreeSet<&str> = asts
        .iter()
        .flat_map(|a| a.extern_fns.iter().map(|(n, _)| n.as_str()))
        .collect();
    for (fi, ast) in asts.iter().enumerate() {
        for (name, line) in &ast.extern_fns {
            if ast.rel != REACTOR {
                scans[fi].push(
                    out,
                    Rule::U2,
                    *line,
                    format!(
                        "raw syscall declaration `{name}` outside rt::reactor \
                         (the audited Poller API owns raw I/O)"
                    ),
                );
            }
        }
    }
    if extern_names.is_empty() {
        return;
    }
    // Direct syscall calls: allowed only inside the reactor; functions
    // making them are tainted for the reachability check.
    let mut tainted = vec![false; graph.fns.len()];
    for (f, gfn) in graph.fns.iter().enumerate() {
        let ast = &asts[gfn.file];
        for site in call_sites(&ast.toks, gfn.item.body.clone()) {
            if !site.method && extern_names.contains(site.name()) {
                if ast.rel == REACTOR {
                    tainted[f] = true;
                } else {
                    scans[gfn.file].push(
                        out,
                        Rule::U2,
                        site.line,
                        format!("raw syscall `{}` called outside rt::reactor", site.name()),
                    );
                }
            }
        }
    }
    // Propagate taint inside the reactor along may-edges (same file,
    // same name — over-approximate, which is what reachability wants).
    loop {
        let mut changed = false;
        for (f, gfn) in graph.fns.iter().enumerate() {
            if tainted[f] || asts[gfn.file].rel != REACTOR {
                continue;
            }
            let ast = &asts[gfn.file];
            for site in call_sites(&ast.toks, gfn.item.body.clone()) {
                if graph
                    .may_resolve_same_file(f, &site)
                    .iter()
                    .any(|&c| tainted[c])
                {
                    tainted[f] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (f, gfn) in graph.fns.iter().enumerate() {
        if !tainted[f] || asts[gfn.file].rel != REACTOR {
            continue;
        }
        let item = &gfn.item;
        if item.is_bare_pub && item.impl_type.as_deref() != Some("Poller") {
            scans[gfn.file].push(
                out,
                Rule::U2,
                item.line,
                format!(
                    "raw-syscall wrapper `{}` is reachable outside the audited \
                     Poller API (restrict its visibility or route through Poller)",
                    item.name
                ),
            );
        }
    }
}
