//! The checked-in violation baseline.
//!
//! The baseline grandfathers known violations so the CI gate fails only
//! on **new** ones. Entries match on `(rule, path, snippet)` — not line
//! numbers — so unrelated edits in the same file do not invalidate the
//! baseline, while moving or copying a violating line still counts each
//! occurrence (matching is multiset-aware: two identical violations need
//! two baseline entries).
//!
//! Policy: the baseline only shrinks. New code must either satisfy the
//! rules or carry an inline `lint:allow(RULE, reason)` with a real
//! justification.

use std::collections::BTreeMap;

use soteria_rt::json::Json;

use crate::rules::{Rule, Violation};
use crate::LintError;

/// Format tag written into every baseline document.
pub const BASELINE_FORMAT: &str = "soteria-lint-baseline/v1";

/// A grandfathered violation set.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Multiset of grandfathered `(rule, path, snippet)` keys.
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// The empty baseline (every violation is new).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of grandfathered entries.
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// True if no entries are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a baseline grandfathering exactly `violations`.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.rule.name().to_string(), v.path.clone(), v.snippet.clone()))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Splits `violations` into `(new, baselined)`.
    pub fn partition(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<Violation>) {
        let mut budget = self.entries.clone();
        let mut fresh = Vec::new();
        let mut known = Vec::new();
        for v in violations {
            let key = (v.rule.name().to_string(), v.path.clone(), v.snippet.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    known.push(v);
                }
                _ => fresh.push(v),
            }
        }
        (fresh, known)
    }

    /// Serializes to the committed JSON document.
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .flat_map(|((rule, path, snippet), count)| {
                std::iter::repeat_with(move || {
                    Json::Obj(vec![
                        ("rule".to_string(), Json::Str(rule.clone())),
                        ("path".to_string(), Json::Str(path.clone())),
                        ("snippet".to_string(), Json::Str(snippet.clone())),
                    ])
                })
                .take(*count)
            })
            .collect();
        Json::Obj(vec![
            (
                "format".to_string(),
                Json::Str(BASELINE_FORMAT.to_string()),
            ),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Parses a committed baseline document.
    ///
    /// # Errors
    ///
    /// Returns [`LintError::Baseline`] when the document is not valid
    /// JSON, has the wrong format tag, or an entry is malformed.
    pub fn parse(path_shown: &str, text: &str) -> Result<Self, LintError> {
        let bad = |msg: &str| LintError::Baseline {
            path: path_shown.to_string(),
            message: msg.to_string(),
        };
        let doc = Json::parse(text).map_err(|e| bad(&e.to_string()))?;
        if doc.get("format").and_then(Json::as_str) != Some(BASELINE_FORMAT) {
            return Err(bad(&format!("missing format tag {BASELINE_FORMAT:?}")));
        }
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing 'entries' array"))?;
        let mut baseline = Baseline::empty();
        for e in entries {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| bad(&format!("entry missing string field '{name}'")))
            };
            let rule = field("rule")?;
            if Rule::parse(&rule).is_none() {
                return Err(bad(&format!("unknown rule '{rule}'")));
            }
            let key = (rule, field("path")?, field("snippet")?);
            *baseline.entries.entry(key).or_insert(0) += 1;
        }
        Ok(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn round_trip_and_partition() {
        let vs = vec![
            v(Rule::P1, "crates/core/src/a.rs", "x.unwrap();"),
            v(Rule::P1, "crates/core/src/a.rs", "x.unwrap();"),
            v(Rule::D2, "crates/nvm/src/b.rs", "use std::collections::HashMap;"),
        ];
        let b = Baseline::from_violations(&vs);
        assert_eq!(b.len(), 3);
        let text = b.to_json().to_pretty_string();
        let b2 = Baseline::parse("x.json", &text).expect("round trip");
        assert_eq!(b2.len(), 3);

        // Two identical occurrences baselined, a third is new.
        let now = vec![
            vs[0].clone(),
            vs[0].clone(),
            vs[0].clone(),
            v(Rule::U1, "crates/rt/src/c.rs", "unsafe {"),
        ];
        let (fresh, known) = b2.partition(now);
        assert_eq!(known.len(), 2);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[1].rule, Rule::U1);
    }

    #[test]
    fn bad_documents_are_rejected_with_pinned_messages() {
        let e = Baseline::parse("b.json", "not json").expect_err("invalid");
        assert!(e.to_string().starts_with("baseline error: b.json: "));
        let e = Baseline::parse("b.json", "{}").expect_err("no tag");
        assert_eq!(
            e.to_string(),
            "baseline error: b.json: missing format tag \"soteria-lint-baseline/v1\""
        );
    }
}
