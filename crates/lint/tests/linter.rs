//! End-to-end tests for `soteria-lint`: every rule exercised through
//! fixture files (positive hits, literal/comment immunity, suppression,
//! baseline matching), a self-test on the linter's own source, a
//! whole-workspace cleanliness gate, and pinned exit codes through the
//! real binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use soteria_lint::conc::lint_concurrency;
use soteria_lint::{
    lint_cargo_toml, lint_rust_source, lint_workspace, Baseline, LintReport, Rule, Violation,
};
use soteria_rt::json::Json;

fn rules_of(violations: &[Violation]) -> Vec<Rule> {
    violations.iter().map(|v| v.rule).collect()
}

fn count(violations: &[Violation], rule: Rule) -> usize {
    violations.iter().filter(|v| v.rule == rule).count()
}

// ----- rule positives --------------------------------------------------

#[test]
fn d1_flags_wall_clock_sources() {
    let vs = lint_rust_source(
        "crates/faultsim/src/fixture.rs",
        include_str!("fixtures/d1_hits.rs"),
    );
    assert_eq!(count(&vs, Rule::D1), 4, "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("`Instant::now`")));
    assert!(vs.iter().any(|v| v.message.contains("`thread::sleep`")));
}

#[test]
fn d1_allowlist_exempts_rt_bench_and_svc() {
    let src = include_str!("fixtures/d1_hits.rs");
    for rel in [
        "crates/rt/src/bench.rs",
        "crates/rt/src/obs.rs",
        "crates/svc/src/server.rs",
        "crates/cli/src/main.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert_eq!(count(&vs, Rule::D1), 0, "{rel} should be allowlisted");
    }
}

#[test]
fn d2_flags_hash_containers_in_deterministic_crates() {
    let src = include_str!("fixtures/d2_hits.rs");
    for rel in [
        "crates/nvm/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/faultsim/src/fixture.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert_eq!(count(&vs, Rule::D2), 3, "{rel}: {vs:?}");
    }
    // Outside the deterministic crates the rule does not apply.
    let vs = lint_rust_source("crates/workloads/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::D2), 0);
}

#[test]
fn d3_flags_randomness_outside_rt_rng() {
    let src = include_str!("fixtures/d3_hits.rs");
    let vs = lint_rust_source("crates/core/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::D3), 4, "{vs:?}");
    let vs = lint_rust_source("crates/rt/src/rng.rs", src);
    assert_eq!(count(&vs, Rule::D3), 0, "rng.rs is the sanctioned source");
}

#[test]
fn u1_requires_safety_comments() {
    let vs = lint_rust_source(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/u1_unsafe.rs"),
    );
    assert_eq!(count(&vs, Rule::U1), 1, "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert_eq!(vs[0].message, "unsafe without a `// SAFETY:` comment");
}

#[test]
fn u1_applies_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    let vs = lint_rust_source("crates/rt/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::U1), 1);
}

#[test]
fn p1_flags_unwrap_and_expect_in_library_code() {
    let src = include_str!("fixtures/p1_panics.rs");
    let vs = lint_rust_source("crates/core/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::P1), 2, "{vs:?}");
    // Not in scope for crates outside the library set.
    let vs = lint_rust_source("crates/cli/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::P1), 0);
}

// ----- immunity, suppression, test regions -----------------------------

#[test]
fn literals_and_comments_never_fire() {
    let vs = lint_rust_source(
        "crates/nvm/src/fixture.rs",
        include_str!("fixtures/literal_immunity.rs"),
    );
    assert!(vs.is_empty(), "expected no violations, got {vs:?}");
}

#[test]
fn lint_allow_suppresses_and_a1_flags_malformed() {
    let vs = lint_rust_source(
        "crates/nvm/src/fixture.rs",
        include_str!("fixtures/allow_suppression.rs"),
    );
    assert_eq!(count(&vs, Rule::D2), 2, "{vs:?}");
    assert_eq!(count(&vs, Rule::A1), 2, "{vs:?}");
    let d2_lines: Vec<usize> = vs
        .iter()
        .filter(|v| v.rule == Rule::D2)
        .map(|v| v.line)
        .collect();
    assert_eq!(d2_lines, vec![10, 14]);
}

#[test]
fn cfg_test_regions_are_exempt_from_determinism_rules() {
    let vs = lint_rust_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/test_regions.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::P1]);
    assert_eq!(vs[0].line, 5);
}

#[test]
fn tests_and_benches_trees_are_exempt_from_determinism_rules() {
    let src = include_str!("fixtures/d2_hits.rs");
    for rel in [
        "crates/nvm/tests/fixture.rs",
        "crates/core/benches/fixture.rs",
        "tests/fixture.rs",
        "examples/fixture.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert!(vs.is_empty(), "{rel} should be exempt, got {vs:?}");
    }
}

// ----- H1 --------------------------------------------------------------

#[test]
fn h1_flags_external_dependencies() {
    let vs = lint_cargo_toml(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_external.toml"),
    );
    assert_eq!(count(&vs, Rule::H1), 4, "{vs:?}");
    let named: Vec<&str> = vs.iter().map(|v| v.snippet.as_str()).collect();
    assert!(named.iter().any(|s| s.contains("serde")), "{named:?}");
    assert!(vs.iter().any(|v| v.message.contains("`criterion`")));
}

#[test]
fn h1_accepts_hermetic_manifests() {
    let vs = lint_cargo_toml(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_hermetic.toml"),
    );
    assert!(vs.is_empty(), "expected hermetic, got {vs:?}");
}

// ----- baseline --------------------------------------------------------

#[test]
fn baseline_grandfathers_by_rule_path_and_snippet() {
    let vs = lint_rust_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_panics.rs"),
    );
    let baseline = Baseline::from_violations(&vs);
    let (fresh, known) = baseline.partition(vs.clone());
    assert!(fresh.is_empty());
    assert_eq!(known.len(), 2);

    // A baseline for one file does not cover another path.
    let moved = lint_rust_source(
        "crates/ecc/src/fixture.rs",
        include_str!("fixtures/p1_panics.rs"),
    );
    let (fresh, _) = baseline.partition(moved);
    assert_eq!(fresh.len(), 2, "different path must not match the baseline");
}

// ----- self-test and whole-workspace gate ------------------------------

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn linter_is_clean_on_its_own_source() {
    let report = lint_workspace(Path::new(env!("CARGO_MANIFEST_DIR")), &Baseline::empty())
        .expect("lint own crate");
    assert!(
        report.new_violations.is_empty(),
        "soteria-lint must satisfy its own rules: {:?}",
        report.new_violations
    );
    assert!(
        report
            .checked_files
            .iter()
            .any(|f| f.ends_with("src/rules.rs")),
        "self-scan must cover the rule sources: {:?}",
        report.checked_files
    );
    assert!(
        !report.checked_files.iter().any(|f| f.contains("fixtures")),
        "fixtures are excluded from workspace walks"
    );
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = repo_root();
    let baseline_path = root.join("lint-baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse("lint-baseline.json", &text).expect("baseline parses"),
        Err(_) => Baseline::empty(),
    };
    let report = lint_workspace(&root, &baseline).expect("lint workspace");
    assert!(
        report.new_violations.is_empty(),
        "workspace has new lint violations:\n{}",
        report
            .new_violations
            .iter()
            .map(|v| format!("  {v}\n    | {}\n", v.snippet))
            .collect::<String>()
    );
    assert!(
        report.checked_files.len() > 80,
        "workspace walk looks truncated: {} files",
        report.checked_files.len()
    );
}

#[test]
fn every_unsafe_in_the_workspace_has_a_safety_comment() {
    // U1 with an EMPTY baseline: unsafe documentation is never
    // grandfathered.
    let report = lint_workspace(&repo_root(), &Baseline::empty()).expect("lint workspace");
    let u1: Vec<&Violation> = report
        .new_violations
        .iter()
        .chain(report.baselined.iter())
        .filter(|v| v.rule == Rule::U1)
        .collect();
    assert!(u1.is_empty(), "undocumented unsafe: {u1:?}");
}

// ----- the real binary: exit codes and output --------------------------

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_soteria-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = repo_root();
    let out = run_lint(&["--workspace", "--root", &root.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "expected clean workspace, got:\n{stdout}"
    );
    assert!(stdout.contains("soteria-lint: clean"), "{stdout}");
}

#[test]
fn binary_exit_codes_and_usage_are_pinned() {
    let out = run_lint(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("soteria-lint: usage error: pass --workspace (or --list-rules)"),
        "{stderr}"
    );

    let out = run_lint(&["--nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("usage error: unknown flag '--nope'")
    );

    let out = run_lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "D1\nD2\nD3\nH1\nU1\nP1\nA1\nC1\nC2\nC3\nU2\n"
    );
}

#[test]
fn binary_flags_seeded_violations_by_rule_name() {
    // Build a scratch workspace with one violation per seeded rule and
    // check the binary names each rule and exits 1.
    let scratch = std::env::temp_dir().join(format!("soteria-lint-scratch-{}", std::process::id()));
    let nvm_src = scratch.join("crates").join("nvm").join("src");
    std::fs::create_dir_all(&nvm_src).expect("mkdir scratch");
    std::fs::write(
        scratch.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("write manifest");
    std::fs::write(
        nvm_src.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn now() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn raw(p: *const u8) -> u8 { unsafe { *p } }\n\
         pub type T = HashMap<u8, u8>;\n",
    )
    .expect("write source");

    let out = run_lint(&["--workspace", "--root", &scratch.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    for needle in [": D1: ", ": D2: ", ": H1: ", ": U1: "] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    assert!(stdout.contains("new violation(s)"), "{stdout}");

    // JSON mode reports the same findings machine-readably.
    let out = run_lint(&[
        "--workspace",
        "--root",
        &scratch.display().to_string(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let doc = soteria_rt::json::Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("valid JSON report");
    assert_eq!(
        doc.get("tool").and_then(|t| t.as_str()),
        Some("soteria-lint/v2")
    );
    assert!(doc.get("new_violations").and_then(|n| n.as_f64()).unwrap_or(0.0) >= 4.0);
    // v2 tags every violation with the pass that produced it.
    match doc.get("violations") {
        Some(Json::Arr(items)) => {
            assert!(!items.is_empty());
            for item in items {
                let pass = item.get("pass").and_then(|p| p.as_str());
                assert!(
                    matches!(pass, Some("lex") | Some("conc")),
                    "bad pass field: {pass:?}"
                );
            }
        }
        other => panic!("violations array missing: {other:?}"),
    }

    // A written baseline grandfathers everything: exit turns 0.
    let out = run_lint(&[
        "--workspace",
        "--root",
        &scratch.display().to_string(),
        "--write-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let out = run_lint(&["--workspace", "--root", &scratch.display().to_string()]);
    assert_eq!(out.status.code(), Some(0), "baselined scratch must be clean");

    std::fs::remove_dir_all(&scratch).ok();
}

// ----- the conc pass: C1/C2/C3/U2 fixtures -----------------------------

fn conc(rel: &str, src: &str) -> Vec<Violation> {
    lint_concurrency(&[(rel.to_string(), src.to_string())])
}

#[test]
fn c1_flags_lock_order_cycles() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c1_cycle.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::C1, Rule::C1], "{vs:?}");
    assert!(vs.iter().all(|v| v.message.contains("lock-order cycle")));
    assert!(
        vs.iter()
            .any(|v| v.message.contains("`Pair.b`") && v.message.contains("`Pair.a`")),
        "{vs:?}"
    );
}

#[test]
fn c1_suppression_with_reason_is_honored() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c1_suppressed.rs"),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn c2_flags_lock_held_across_blocking_op() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c2_blocking.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::C2], "{vs:?}");
    assert!(
        vs[0].message.contains("held across blocking `write_all`"),
        "{vs:?}"
    );
}

#[test]
fn c2_suppression_with_reason_is_honored() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c2_suppressed.rs"),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn c3_flags_condvar_wait_outside_predicate_loop() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c3_wait.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::C3], "{vs:?}");
    assert!(
        vs[0].message.contains("outside a predicate loop"),
        "{vs:?}"
    );
}

#[test]
fn c3_suppression_with_reason_is_honored() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c3_suppressed.rs"),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn u2_flags_raw_syscalls_outside_reactor() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/u2_raw.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::U2, Rule::U2], "{vs:?}");
    assert!(
        vs.iter()
            .any(|v| v.message.contains("raw syscall declaration `epoll_create1`")),
        "{vs:?}"
    );
    assert!(
        vs.iter()
            .any(|v| v.message.contains("raw syscall `epoll_create1` called outside")),
        "{vs:?}"
    );
}

#[test]
fn u2_suppression_with_reason_is_honored() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/u2_suppressed.rs"),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn u2_inside_reactor_only_the_audited_poller_api_may_leak() {
    let vs = conc(
        "crates/rt/src/reactor.rs",
        include_str!("fixtures/u2_reactor.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::U2], "{vs:?}");
    assert!(vs[0].snippet.contains("sneaky_wait"), "{vs:?}");
    assert!(
        vs[0]
            .message
            .contains("reachable outside the audited Poller API"),
        "{vs:?}"
    );
}

#[test]
fn conc_blocking_propagates_across_files_through_the_call_graph() {
    let helper = "pub fn push_all(stream: &mut std::net::TcpStream) {\n\
                  \x20   use std::io::Write;\n\
                  \x20   stream.write_all(b\"x\").ok();\n\
                  }\n";
    let caller = "use std::sync::Mutex;\n\
                  pub struct S {\n\
                  \x20   pub state: Mutex<u32>,\n\
                  }\n\
                  pub fn relay(s: &S, stream: &mut std::net::TcpStream) {\n\
                  \x20   let g = s.state.lock().unwrap();\n\
                  \x20   push_all(stream);\n\
                  \x20   drop(g);\n\
                  }\n";
    let vs = lint_concurrency(&[
        ("crates/svc/src/helper.rs".to_string(), helper.to_string()),
        ("crates/svc/src/caller.rs".to_string(), caller.to_string()),
    ]);
    assert_eq!(rules_of(&vs), vec![Rule::C2], "{vs:?}");
    assert!(vs[0].path.ends_with("caller.rs"), "{vs:?}");
    assert!(
        vs[0].message.contains("call to blocking `push_all`"),
        "{vs:?}"
    );
}

#[test]
fn conc_lock_order_cycle_spans_the_call_graph() {
    let file_a = "use std::sync::Mutex;\n\
                  pub struct S {\n\
                  \x20   pub a: Mutex<u32>,\n\
                  \x20   pub b: Mutex<u32>,\n\
                  }\n\
                  pub fn take_b(s: &S) {\n\
                  \x20   let g = s.b.lock().unwrap();\n\
                  \x20   drop(g);\n\
                  }\n\
                  pub fn forward(s: &S) {\n\
                  \x20   let g = s.a.lock().unwrap();\n\
                  \x20   take_b(s);\n\
                  \x20   drop(g);\n\
                  }\n";
    let file_b = "pub fn backward(s: &crate::a::S) {\n\
                  \x20   let gb = s.b.lock().unwrap();\n\
                  \x20   let ga = s.a.lock().unwrap();\n\
                  \x20   drop(ga);\n\
                  \x20   drop(gb);\n\
                  }\n";
    let vs = lint_concurrency(&[
        ("crates/svc/src/a.rs".to_string(), file_a.to_string()),
        ("crates/svc/src/b.rs".to_string(), file_b.to_string()),
    ]);
    assert_eq!(count(&vs, Rule::C1), 2, "{vs:?}");
    assert_eq!(vs.len(), 2, "only C1 should fire: {vs:?}");
}

#[test]
fn conc_rules_skip_test_code() {
    let src = include_str!("fixtures/c1_cycle.rs");
    for rel in ["crates/svc/tests/fixture.rs", "tests/fixture.rs"] {
        let vs = conc(rel, src);
        assert!(vs.is_empty(), "{rel} should be exempt, got {vs:?}");
    }
}

// ----- raw identifiers (previously mislexed) ---------------------------

#[test]
fn raw_identifiers_do_not_mislex_as_keywords() {
    // `fn r#unsafe` used to fire U1 and `type r#HashMap` fired D2: the
    // token scanner matched the keyword straight through the `r#`.
    let vs = lint_rust_source(
        "crates/nvm/src/fixture.rs",
        include_str!("fixtures/raw_ident.rs"),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

// ----- v2 JSON report round-trips through rt::json ---------------------

#[test]
fn json_report_roundtrips_with_pass_field() {
    let vs = conc(
        "crates/svc/src/fixture.rs",
        include_str!("fixtures/c2_blocking.rs"),
    );
    assert!(!vs.is_empty());
    let report = LintReport {
        checked_files: vec!["crates/svc/src/fixture.rs".to_string()],
        new_violations: vs,
        baselined: Vec::new(),
    };
    let doc = Json::parse(&report.to_json().to_pretty_string()).expect("report parses back");
    assert_eq!(
        doc.get("tool").and_then(|t| t.as_str()),
        Some("soteria-lint/v2")
    );
    match doc.get("violations") {
        Some(Json::Arr(items)) => {
            assert!(!items.is_empty());
            for item in items {
                assert_eq!(item.get("pass").and_then(|p| p.as_str()), Some("conc"));
                assert_eq!(item.get("rule").and_then(|r| r.as_str()), Some("C2"));
            }
        }
        other => panic!("violations array missing: {other:?}"),
    }
}

// ----- --changed mode and --help ---------------------------------------

#[test]
fn binary_changed_mode_lints_only_listed_files() {
    let scratch =
        std::env::temp_dir().join(format!("soteria-lint-changed-{}", std::process::id()));
    let nvm_src = scratch.join("crates").join("nvm").join("src");
    std::fs::create_dir_all(&nvm_src).expect("mkdir scratch");
    std::fs::write(
        nvm_src.join("dirty.rs"),
        "use std::collections::HashMap;\npub type T = HashMap<u8, u8>;\n",
    )
    .expect("write dirty");
    std::fs::write(nvm_src.join("clean.rs"), "pub fn ok() {}\n").expect("write clean");
    let root = scratch.display().to_string();

    // Only the listed dirty file is linted and flagged.
    let out = run_lint(&["--changed", "crates/nvm/src/dirty.rs", "--root", &root]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains(": D2: "), "{stdout}");

    // A clean listed file exits 0; the dirty one is not scanned.
    let out = run_lint(&["--changed", "crates/nvm/src/clean.rs", "--root", &root]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("(1 files checked"));

    // Deleted/unknown and non-lintable paths are skipped, not errors.
    let out = run_lint(&[
        "--changed",
        "crates/nvm/src/gone.rs",
        "README.md",
        "--root",
        &root,
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("(0 files checked"));

    // Mode conflicts are usage errors (exit 2).
    let out = run_lint(&["--workspace", "--changed", "x.rs", "--root", &root]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr)
        .contains("--workspace and --changed are mutually exclusive"));
    let out = run_lint(&["--changed", "x.rs", "--write-baseline", "--root", &root]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr)
        .contains("--write-baseline needs --workspace"));

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn binary_help_output_is_pinned_exactly() {
    let out = run_lint(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = concat!(
        "soteria-lint: determinism, hermeticity & concurrency linter\n",
        "\n",
        "usage: soteria-lint --workspace [--root DIR] [--baseline FILE] ",
        "[--json] [--write-baseline] [--list-rules]\n",
        "       soteria-lint --changed FILE... [--root DIR] [--baseline FILE] [--json]\n",
        "\n",
        "modes:\n",
        "  --workspace        lint every *.rs and Cargo.toml under the root\n",
        "                     (lex pass + whole-workspace conc pass)\n",
        "  --changed FILE...  lint only the listed files with the lex pass\n",
        "                     (fast pre-commit mode; missing files are skipped)\n",
        "  --list-rules       print the rule catalog, one name per line\n",
        "\n",
        "options:\n",
        "  --root DIR         workspace root (default: .)\n",
        "  --baseline FILE    baseline path (default: ROOT/lint-baseline.json)\n",
        "  --json             print the machine-readable soteria-lint/v2 report\n",
        "  --write-baseline   grandfather all current findings into the baseline\n",
        "  --help             show this help\n",
        "\n",
        "exit codes: 0 clean, 1 new violations, 2 usage/IO/baseline error\n",
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
    assert_eq!(out.stderr.len(), 0);
}
