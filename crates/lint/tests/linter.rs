//! End-to-end tests for `soteria-lint`: every rule exercised through
//! fixture files (positive hits, literal/comment immunity, suppression,
//! baseline matching), a self-test on the linter's own source, a
//! whole-workspace cleanliness gate, and pinned exit codes through the
//! real binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use soteria_lint::{
    lint_cargo_toml, lint_rust_source, lint_workspace, Baseline, Rule, Violation,
};

fn rules_of(violations: &[Violation]) -> Vec<Rule> {
    violations.iter().map(|v| v.rule).collect()
}

fn count(violations: &[Violation], rule: Rule) -> usize {
    violations.iter().filter(|v| v.rule == rule).count()
}

// ----- rule positives --------------------------------------------------

#[test]
fn d1_flags_wall_clock_sources() {
    let vs = lint_rust_source(
        "crates/faultsim/src/fixture.rs",
        include_str!("fixtures/d1_hits.rs"),
    );
    assert_eq!(count(&vs, Rule::D1), 4, "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("`Instant::now`")));
    assert!(vs.iter().any(|v| v.message.contains("`thread::sleep`")));
}

#[test]
fn d1_allowlist_exempts_rt_bench_and_svc() {
    let src = include_str!("fixtures/d1_hits.rs");
    for rel in [
        "crates/rt/src/bench.rs",
        "crates/rt/src/obs.rs",
        "crates/svc/src/server.rs",
        "crates/cli/src/main.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert_eq!(count(&vs, Rule::D1), 0, "{rel} should be allowlisted");
    }
}

#[test]
fn d2_flags_hash_containers_in_deterministic_crates() {
    let src = include_str!("fixtures/d2_hits.rs");
    for rel in [
        "crates/nvm/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/faultsim/src/fixture.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert_eq!(count(&vs, Rule::D2), 3, "{rel}: {vs:?}");
    }
    // Outside the deterministic crates the rule does not apply.
    let vs = lint_rust_source("crates/workloads/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::D2), 0);
}

#[test]
fn d3_flags_randomness_outside_rt_rng() {
    let src = include_str!("fixtures/d3_hits.rs");
    let vs = lint_rust_source("crates/core/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::D3), 4, "{vs:?}");
    let vs = lint_rust_source("crates/rt/src/rng.rs", src);
    assert_eq!(count(&vs, Rule::D3), 0, "rng.rs is the sanctioned source");
}

#[test]
fn u1_requires_safety_comments() {
    let vs = lint_rust_source(
        "crates/crypto/src/fixture.rs",
        include_str!("fixtures/u1_unsafe.rs"),
    );
    assert_eq!(count(&vs, Rule::U1), 1, "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert_eq!(vs[0].message, "unsafe without a `// SAFETY:` comment");
}

#[test]
fn u1_applies_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    let vs = lint_rust_source("crates/rt/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::U1), 1);
}

#[test]
fn p1_flags_unwrap_and_expect_in_library_code() {
    let src = include_str!("fixtures/p1_panics.rs");
    let vs = lint_rust_source("crates/core/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::P1), 2, "{vs:?}");
    // Not in scope for crates outside the library set.
    let vs = lint_rust_source("crates/cli/src/fixture.rs", src);
    assert_eq!(count(&vs, Rule::P1), 0);
}

// ----- immunity, suppression, test regions -----------------------------

#[test]
fn literals_and_comments_never_fire() {
    let vs = lint_rust_source(
        "crates/nvm/src/fixture.rs",
        include_str!("fixtures/literal_immunity.rs"),
    );
    assert!(vs.is_empty(), "expected no violations, got {vs:?}");
}

#[test]
fn lint_allow_suppresses_and_a1_flags_malformed() {
    let vs = lint_rust_source(
        "crates/nvm/src/fixture.rs",
        include_str!("fixtures/allow_suppression.rs"),
    );
    assert_eq!(count(&vs, Rule::D2), 2, "{vs:?}");
    assert_eq!(count(&vs, Rule::A1), 2, "{vs:?}");
    let d2_lines: Vec<usize> = vs
        .iter()
        .filter(|v| v.rule == Rule::D2)
        .map(|v| v.line)
        .collect();
    assert_eq!(d2_lines, vec![10, 14]);
}

#[test]
fn cfg_test_regions_are_exempt_from_determinism_rules() {
    let vs = lint_rust_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/test_regions.rs"),
    );
    assert_eq!(rules_of(&vs), vec![Rule::P1]);
    assert_eq!(vs[0].line, 5);
}

#[test]
fn tests_and_benches_trees_are_exempt_from_determinism_rules() {
    let src = include_str!("fixtures/d2_hits.rs");
    for rel in [
        "crates/nvm/tests/fixture.rs",
        "crates/core/benches/fixture.rs",
        "tests/fixture.rs",
        "examples/fixture.rs",
    ] {
        let vs = lint_rust_source(rel, src);
        assert!(vs.is_empty(), "{rel} should be exempt, got {vs:?}");
    }
}

// ----- H1 --------------------------------------------------------------

#[test]
fn h1_flags_external_dependencies() {
    let vs = lint_cargo_toml(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_external.toml"),
    );
    assert_eq!(count(&vs, Rule::H1), 4, "{vs:?}");
    let named: Vec<&str> = vs.iter().map(|v| v.snippet.as_str()).collect();
    assert!(named.iter().any(|s| s.contains("serde")), "{named:?}");
    assert!(vs.iter().any(|v| v.message.contains("`criterion`")));
}

#[test]
fn h1_accepts_hermetic_manifests() {
    let vs = lint_cargo_toml(
        "crates/fixture/Cargo.toml",
        include_str!("fixtures/h1_hermetic.toml"),
    );
    assert!(vs.is_empty(), "expected hermetic, got {vs:?}");
}

// ----- baseline --------------------------------------------------------

#[test]
fn baseline_grandfathers_by_rule_path_and_snippet() {
    let vs = lint_rust_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/p1_panics.rs"),
    );
    let baseline = Baseline::from_violations(&vs);
    let (fresh, known) = baseline.partition(vs.clone());
    assert!(fresh.is_empty());
    assert_eq!(known.len(), 2);

    // A baseline for one file does not cover another path.
    let moved = lint_rust_source(
        "crates/ecc/src/fixture.rs",
        include_str!("fixtures/p1_panics.rs"),
    );
    let (fresh, _) = baseline.partition(moved);
    assert_eq!(fresh.len(), 2, "different path must not match the baseline");
}

// ----- self-test and whole-workspace gate ------------------------------

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn linter_is_clean_on_its_own_source() {
    let report = lint_workspace(Path::new(env!("CARGO_MANIFEST_DIR")), &Baseline::empty())
        .expect("lint own crate");
    assert!(
        report.new_violations.is_empty(),
        "soteria-lint must satisfy its own rules: {:?}",
        report.new_violations
    );
    assert!(
        report
            .checked_files
            .iter()
            .any(|f| f.ends_with("src/rules.rs")),
        "self-scan must cover the rule sources: {:?}",
        report.checked_files
    );
    assert!(
        !report.checked_files.iter().any(|f| f.contains("fixtures")),
        "fixtures are excluded from workspace walks"
    );
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let root = repo_root();
    let baseline_path = root.join("lint-baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse("lint-baseline.json", &text).expect("baseline parses"),
        Err(_) => Baseline::empty(),
    };
    let report = lint_workspace(&root, &baseline).expect("lint workspace");
    assert!(
        report.new_violations.is_empty(),
        "workspace has new lint violations:\n{}",
        report
            .new_violations
            .iter()
            .map(|v| format!("  {v}\n    | {}\n", v.snippet))
            .collect::<String>()
    );
    assert!(
        report.checked_files.len() > 80,
        "workspace walk looks truncated: {} files",
        report.checked_files.len()
    );
}

#[test]
fn every_unsafe_in_the_workspace_has_a_safety_comment() {
    // U1 with an EMPTY baseline: unsafe documentation is never
    // grandfathered.
    let report = lint_workspace(&repo_root(), &Baseline::empty()).expect("lint workspace");
    let u1: Vec<&Violation> = report
        .new_violations
        .iter()
        .chain(report.baselined.iter())
        .filter(|v| v.rule == Rule::U1)
        .collect();
    assert!(u1.is_empty(), "undocumented unsafe: {u1:?}");
}

// ----- the real binary: exit codes and output --------------------------

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_soteria-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = repo_root();
    let out = run_lint(&["--workspace", "--root", &root.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "expected clean workspace, got:\n{stdout}"
    );
    assert!(stdout.contains("soteria-lint: clean"), "{stdout}");
}

#[test]
fn binary_exit_codes_and_usage_are_pinned() {
    let out = run_lint(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("soteria-lint: usage error: pass --workspace (or --list-rules)"),
        "{stderr}"
    );

    let out = run_lint(&["--nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("usage error: unknown flag '--nope'")
    );

    let out = run_lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "D1\nD2\nD3\nH1\nU1\nP1\nA1\n"
    );
}

#[test]
fn binary_flags_seeded_violations_by_rule_name() {
    // Build a scratch workspace with one violation per seeded rule and
    // check the binary names each rule and exits 1.
    let scratch = std::env::temp_dir().join(format!("soteria-lint-scratch-{}", std::process::id()));
    let nvm_src = scratch.join("crates").join("nvm").join("src");
    std::fs::create_dir_all(&nvm_src).expect("mkdir scratch");
    std::fs::write(
        scratch.join("Cargo.toml"),
        "[package]\nname = \"scratch\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("write manifest");
    std::fs::write(
        nvm_src.join("lib.rs"),
        "use std::collections::HashMap;\n\
         pub fn now() -> std::time::Instant { std::time::Instant::now() }\n\
         pub fn raw(p: *const u8) -> u8 { unsafe { *p } }\n\
         pub type T = HashMap<u8, u8>;\n",
    )
    .expect("write source");

    let out = run_lint(&["--workspace", "--root", &scratch.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    for needle in [": D1: ", ": D2: ", ": H1: ", ": U1: "] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    assert!(stdout.contains("new violation(s)"), "{stdout}");

    // JSON mode reports the same findings machine-readably.
    let out = run_lint(&[
        "--workspace",
        "--root",
        &scratch.display().to_string(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let doc = soteria_rt::json::Json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("valid JSON report");
    assert_eq!(
        doc.get("tool").and_then(|t| t.as_str()),
        Some("soteria-lint/v1")
    );
    assert!(doc.get("new_violations").and_then(|n| n.as_f64()).unwrap_or(0.0) >= 4.0);

    // A written baseline grandfathers everything: exit turns 0.
    let out = run_lint(&[
        "--workspace",
        "--root",
        &scratch.display().to_string(),
        "--write-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let out = run_lint(&["--workspace", "--root", &scratch.display().to_string()]);
    assert_eq!(out.status.code(), Some(0), "baselined scratch must be clean");

    std::fs::remove_dir_all(&scratch).ok();
}
