//! Fixture lexed *as* `crates/rt/src/reactor.rs`: a raw syscall behind
//! the audited `Poller` API (fine) and behind a stray bare-`pub` free
//! function (U2).

pub struct Poller {
    fd: i32,
}

mod sys {
    extern "C" {
        pub fn epoll_wait(epfd: i32) -> i32;
    }
}

impl Poller {
    pub fn wait(&self) -> i32 {
        // SAFETY: fixture only; never executed.
        unsafe { sys::epoll_wait(self.fd) }
    }
}

pub fn sneaky_wait(fd: i32) -> i32 {
    // SAFETY: fixture only; never executed.
    unsafe { sys::epoll_wait(fd) }
}

pub(crate) fn audited_helper(fd: i32) -> i32 {
    // SAFETY: fixture only; never executed.
    unsafe { sys::epoll_wait(fd) }
}
