//! Fixture: the blocking write from `c2_blocking.rs`, suppressed with a
//! reasoned allow.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Shared {
    pub state: Mutex<u32>,
}

pub fn bad(shared: &Shared, stream: &mut TcpStream) {
    let g = shared.state.lock().unwrap();
    // lint:allow(C2, fixture: socket has a 1ms write timeout, bounded stall)
    stream.write_all(b"x").ok();
    drop(g);
}
