//! P1 fixture: panicking shortcuts in library code (linted under a
//! `crates/core/src/...` path).

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // P1: unwrap in library code
}

pub fn second(xs: &[u64]) -> u64 {
    *xs.get(1).expect("at least two elements") // P1: expect in library code
}

pub fn safe(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or(0) // fine: total, no panic
}
