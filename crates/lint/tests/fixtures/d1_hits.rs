//! D1 fixture: wall-clock sources in non-allowlisted, non-test code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let _t = SystemTime::now(); // D1: SystemTime
    let start = Instant::now(); // D1: Instant::now
    std::thread::sleep(std::time::Duration::from_millis(1)); // D1: thread::sleep
    start.elapsed().as_nanos() as u64
}
