//! Fixture: two mutexes acquired in opposite orders — a lock-order
//! cycle (C1) between `Pair.a` and `Pair.b`.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn forward(p: &Pair) {
    let ga = p.a.lock().unwrap();
    let gb = p.b.lock().unwrap();
    drop(gb);
    drop(ga);
}

pub fn backward(p: &Pair) {
    let gb = p.b.lock().unwrap();
    let ga = p.a.lock().unwrap();
    drop(ga);
    drop(gb);
}
