//! D2 fixture: hash-ordered containers in a deterministic crate
//! (linted under a `crates/nvm/src/...` path).
use std::collections::{HashMap, HashSet};

pub struct Tracker {
    pub writes: HashMap<u64, u64>,
}

pub fn distinct(xs: &[u64]) -> usize {
    xs.iter().collect::<HashSet<_>>().len()
}
