//! Suppression fixture (linted under a `crates/nvm/src/...` path).
use std::collections::HashMap; // lint:allow(D2, fixture: same-line suppression)

pub struct Cache {
    // lint:allow(D2, fixture: suppression on the comment line above)
    pub index: HashMap<u64, u32>,
}

pub struct Unsuppressed {
    pub index: HashMap<u64, u32>, // D2 fires: no allow here
}

pub fn reasonless() {
    let _m: HashMap<u8, u8> = HashMap::new(); // lint:allow(D2)
}

pub fn unknown_rule() {
    let _x = 1; // lint:allow(Z9, no such rule)
}
