//! Fixture: a lock guard held across a blocking socket write (C2).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Shared {
    pub state: Mutex<u32>,
}

pub fn bad(shared: &Shared, stream: &mut TcpStream) {
    let g = shared.state.lock().unwrap();
    stream.write_all(b"x").ok();
    drop(g);
}

pub fn good(shared: &Shared, stream: &mut TcpStream) {
    {
        let g = shared.state.lock().unwrap();
        let _ = *g;
    }
    stream.write_all(b"x").ok();
}
