//! Fixture: the `if`-guarded wait from `c3_wait.rs`, suppressed.

use std::sync::{Condvar, Mutex};

pub struct Shared {
    pub state: Mutex<bool>,
    pub ready: Condvar,
}

pub fn bad(shared: &Shared) -> bool {
    let mut st = shared.state.lock().unwrap();
    if !*st {
        // lint:allow(C3, fixture: single waiter and the flag never resets)
        st = shared.ready.wait(st).unwrap();
    }
    *st
}
