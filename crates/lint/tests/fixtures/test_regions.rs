//! Test-region fixture (linted under a `crates/core/src/...` path):
//! the library-code violation fires, the `#[cfg(test)]` copies do not.

pub fn library_code(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // P1 fires: library code
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let mut m = HashMap::new(); // D2 exempt: cfg(test) region
        m.insert(1u8, 2u8);
        assert_eq!(m.get(&1).copied().unwrap(), 2); // P1 exempt too
    }
}
