//! Fixture: a `Condvar::wait` guarded by `if` instead of a predicate
//! loop (C3) — a spurious wakeup slips straight through.

use std::sync::{Condvar, Mutex};

pub struct Shared {
    pub state: Mutex<bool>,
    pub ready: Condvar,
}

pub fn bad(shared: &Shared) -> bool {
    let mut st = shared.state.lock().unwrap();
    if !*st {
        st = shared.ready.wait(st).unwrap();
    }
    *st
}

pub fn good(shared: &Shared) -> bool {
    let mut st = shared.state.lock().unwrap();
    while !*st {
        st = shared.ready.wait(st).unwrap();
    }
    *st
}
