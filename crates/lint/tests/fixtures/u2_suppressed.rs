//! Fixture: the out-of-reactor syscall from `u2_raw.rs`, suppressed at
//! both the declaration and the call.

pub mod sys {
    extern "C" {
        // lint:allow(U2, fixture: vetted one-off syscall for a probe tool)
        pub fn epoll_create1(flags: i32) -> i32;
    }
}

pub fn open_epoll() -> i32 {
    // SAFETY: fixture only; never executed.
    // lint:allow(U2, fixture: vetted one-off syscall for a probe tool)
    unsafe { sys::epoll_create1(0) }
}
