//! Fixture: raw identifiers that previously mislexed. `fn r#unsafe`
//! used to fire U1 (the `unsafe` token matched through the `r#`), and
//! `type r#HashMap` fired D2 in deterministic crates; `r#match` next to
//! a real raw string checks the two `r#` forms stay distinct.

pub fn r#unsafe(x: u8) -> u8 {
    x
}

pub type r#HashMap = u8;

pub fn mixed() -> &'static str {
    let r#match = r#"contents"#;
    r#match
}
