//! Fixture: a raw syscall declared and called outside `rt::reactor`
//! (two U2 findings — the declaration and the call).

pub mod sys {
    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
    }
}

pub fn open_epoll() -> i32 {
    // SAFETY: fixture only; never executed.
    unsafe { sys::epoll_create1(0) }
}
