//! False-positive immunity fixture: every forbidden token below sits in
//! a string literal, raw string, char context, or comment — none may
//! fire. Linted under a `crates/nvm/src/...` path so D1/D2/D3/P1 all
//! apply.

// A comment naming HashMap, Instant::now(), SystemTime and .unwrap()
// must not trip the lexer-backed rules.

/* Block comments too: HashSet, thread::sleep, DefaultHasher. */

pub fn strings() -> String {
    let a = "HashMap::new() and Instant::now() live in a string";
    let b = r#"raw string: SystemTime, HashSet, .unwrap() and "quotes""#;
    let c = "escaped quote \" then thread::sleep stays stringy";
    let d = 'x'; // char literal, not a lifetime
    let e: &'static str = "lifetime 'static parses, .expect( here is text";
    format!("{a}{b}{c}{d}{e}")
}
