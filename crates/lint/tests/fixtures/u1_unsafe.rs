//! U1 fixture: documented and undocumented `unsafe`.

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // U1: no SAFETY comment anywhere nearby
}

pub fn documented(bytes: &[u8; 4]) -> u32 {
    // SAFETY: any 4-byte array is a valid unaligned u32 source.
    unsafe { bytes.as_ptr().cast::<u32>().read_unaligned() }
}

/// # Safety
///
/// Caller must ensure `p` is valid — the doc section alone does NOT
/// satisfy U1; the line comment below does.
// SAFETY: contract delegated to the caller, checked at every call site.
pub unsafe fn documented_fn(p: *const u8) -> u8 {
    // SAFETY: `p` valid per this function's contract.
    unsafe { *p }
}

#[inline]
// SAFETY: reads through the attribute run above the unsafe fn.
pub unsafe fn attr_between(p: *const u8) -> u8 {
    // SAFETY: `p` valid per this function's contract.
    unsafe { *p }
}
