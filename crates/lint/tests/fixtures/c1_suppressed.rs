//! Fixture: the same opposite-order acquisitions as `c1_cycle.rs`, with
//! both cycle edges explicitly suppressed.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn forward(p: &Pair) {
    let ga = p.a.lock().unwrap();
    let gb = p.b.lock().unwrap(); // lint:allow(C1, fixture: documented order exception)
    drop(gb);
    drop(ga);
}

pub fn backward(p: &Pair) {
    let gb = p.b.lock().unwrap();
    let ga = p.a.lock().unwrap(); // lint:allow(C1, fixture: documented order exception)
    drop(ga);
    drop(gb);
}
