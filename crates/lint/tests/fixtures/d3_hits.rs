//! D3 fixture: randomness sources outside soteria-rt::rng.
use std::collections::hash_map::DefaultHasher;
use std::collections::hash_map::RandomState;

pub fn entropy() -> u64 {
    let _h = DefaultHasher::new(); // D3: DefaultHasher
    let _s = RandomState::new(); // D3: RandomState
    0
}
