//! The Anubis shadow table and its Soteria-hardened entry format (Fig. 8).
//!
//! Anubis [Zubair & Awad, ISCA 2019] keeps crash recovery fast by
//! mirroring the metadata cache into NVM: every time a metadata block is
//! updated *in the cache*, one 64-byte shadow entry is persisted at the
//! slot corresponding to the block's cache location. An entry records the
//! block's address, the 16-bit LSBs of its counters, and a MAC over the
//! block content — enough to reconstruct the lost in-cache updates from
//! the stale memory copy after a crash.
//!
//! The shadow region itself is covered by an **eagerly updated BMT** whose
//! nodes live on-chip and whose root survives power loss, so shadow
//! entries cannot be replayed (§6.1).
//!
//! Soteria's change (Fig. 8b): each entry is **duplicated within its own
//! line**, the two copies placed in different ECC codewords (bytes 0–31 =
//! beats 0–1, bytes 32–63 = beats 2–3 of the chipkill layout), so a
//! partial-line fault cannot take out both copies.

use soteria_crypto::sha256::Sha256;

use crate::layout::MetaId;

/// Whether shadow entries are stored once (Anubis baseline) or duplicated
/// in-line (Soteria).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ShadowMode {
    /// One copy per entry (Fig. 8a).
    Plain,
    /// Two copies per entry in distinct ECC codewords (Fig. 8b).
    #[default]
    Duplicated,
}

/// The logical content of one shadow entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowRecord {
    /// The tracked metadata block.
    pub meta: MetaId,
    /// 16-bit LSBs of the block's counters: the eight child counters for a
    /// ToC node; `lsbs[0]` holds the major-counter LSB for a leaf.
    pub lsbs: [u16; 8],
    /// 64-bit MAC over the up-to-date block content (verifies the
    /// reconstruction during recovery).
    pub mac: u64,
}

const COPY_BYTES: usize = 31; // 6 addr + 1 level + 16 lsbs + 8 mac

fn encode_copy(record: &ShadowRecord, out: &mut [u8]) {
    debug_assert!(out.len() >= COPY_BYTES);
    out[..6].copy_from_slice(&record.meta.index.to_le_bytes()[..6]);
    out[6] = record.meta.level;
    for (i, lsb) in record.lsbs.iter().enumerate() {
        out[7 + 2 * i..9 + 2 * i].copy_from_slice(&lsb.to_le_bytes());
    }
    out[23..31].copy_from_slice(&record.mac.to_le_bytes());
}

fn decode_copy(bytes: &[u8]) -> Option<ShadowRecord> {
    debug_assert!(bytes.len() >= COPY_BYTES);
    let level = bytes[6];
    if level == 0 {
        return None; // vacant
    }
    let mut idx = [0u8; 8];
    idx[..6].copy_from_slice(&bytes[..6]);
    let mut lsbs = [0u16; 8];
    for (i, lsb) in lsbs.iter_mut().enumerate() {
        *lsb = soteria_rt::bytes::u16_le(&bytes[7 + 2 * i..9 + 2 * i]);
    }
    let mac = soteria_rt::bytes::u64_le(&bytes[23..31]);
    Some(ShadowRecord {
        meta: MetaId::new(level, u64::from_le_bytes(idx)),
        lsbs,
        mac,
    })
}

/// Serializes a record into a 64-byte shadow line.
pub fn encode_entry(record: &ShadowRecord, mode: ShadowMode) -> [u8; 64] {
    let mut out = [0u8; 64];
    encode_copy(record, &mut out[..32]);
    if mode == ShadowMode::Duplicated {
        encode_copy(record, &mut out[32..]);
    }
    out
}

/// A vacant shadow line (level byte = 0 in both halves).
pub fn vacant_entry() -> [u8; 64] {
    [0u8; 64]
}

/// Deserializes a shadow line into its candidate records.
///
/// Returns an empty vector for a vacant entry. In duplicated mode both
/// copies are returned when they differ — recovery tries each and keeps
/// the one whose reconstructed block passes the MAC check ("a
/// straightforward process to fix the incorrect part using the correct
/// one").
pub fn decode_entry(bytes: &[u8; 64], mode: ShadowMode) -> Vec<ShadowRecord> {
    let mut out = Vec::new();
    if let Some(a) = decode_copy(&bytes[..32]) {
        out.push(a);
    }
    if mode == ShadowMode::Duplicated {
        if let Some(b) = decode_copy(&bytes[32..]) {
            if !out.contains(&b) {
                out.push(b);
            }
        }
    }
    out
}

/// An 8-ary BMT over the shadow region.
///
/// All intermediate hashes live on-chip (a ~73 kB SRAM for the Table 3
/// shadow size); only the root matters for security and survives power
/// loss in the controller's persistent register file. Updating one slot
/// costs `log8(slots)` on-chip hash operations and zero extra NVM writes.
///
/// Interior nodes are folded **lazily**: [`ShadowTree::update`] rehashes
/// only the leaf and marks its ancestor path dirty; [`ShadowTree::root`]
/// folds the dirty paths on demand. The root is a pure function of the
/// leaf entries, so every observable value is identical to the eager
/// schedule — the model's on-chip registers update instantly with the
/// leaf, and only the root is ever architecturally visible. This takes a
/// steady-state update from `1 + 5·log8(slots)` compressions down to the
/// two of the leaf digest, and batches shared ancestors when several
/// slots change between root reads.
#[derive(Clone, Debug)]
pub struct ShadowTree {
    // levels[0] = leaf hashes (one per slot), last level has <= 8 nodes.
    levels: Vec<Vec<[u8; 32]>>,
    // dirty[l][i] = node i of levels[l + 1] must be refolded because a
    // child changed. Flat bitmaps keep marking O(1) on the write path
    // (the sets grow to thousands of nodes between root reads) and the
    // fold deterministic by scanning in index order.
    dirty: Vec<Vec<bool>>,
}

impl ShadowTree {
    /// Creates a tree over `slots` shadow entries, all vacant.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(slots: u64) -> Self {
        assert!(slots > 0, "shadow region needs at least one slot");
        let mut tree = Self {
            levels: Vec::new(),
            dirty: Vec::new(),
        };
        let mut count = slots as usize;
        tree.levels.push(vec![[0u8; 32]; count]);
        while count > 8 {
            count = count.div_ceil(8);
            tree.levels.push(vec![[0u8; 32]; count]);
        }
        tree.dirty = tree.levels[1..]
            .iter()
            .map(|level| vec![false; level.len()])
            .collect();
        // Initialize hashes for the vacant state.
        let vacant = vacant_entry();
        for slot in 0..slots {
            tree.update(slot, &vacant);
        }
        tree
    }

    /// Number of slots covered.
    pub fn slots(&self) -> u64 {
        self.levels[0].len() as u64
    }

    fn hash_children(child_level: &[[u8; 32]], parent: usize) -> [u8; 32] {
        let mut h = Sha256::new();
        let end = ((parent + 1) * 8).min(child_level.len());
        for child in &child_level[parent * 8..end] {
            h.update(child);
        }
        h.finalize()
    }

    /// Records new content for `slot`: rehashes the leaf and marks its
    /// ancestor path for the next [`ShadowTree::root`] fold.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn update(&mut self, slot: u64, entry_bytes: &[u8; 64]) {
        let slot = slot as usize;
        assert!(
            slot < self.levels[0].len(),
            "shadow slot {slot} out of range"
        );
        self.levels[0][slot] = Sha256::digest64(entry_bytes);
        let mut idx = slot;
        for dirty in &mut self.dirty {
            idx /= 8;
            if dirty[idx] {
                // An already-dirty parent implies dirty ancestors.
                break;
            }
            dirty[idx] = true;
        }
    }

    /// The root hash (hash over the top level; survives crash in the
    /// persistent register file). Folds any dirty interior paths first.
    pub fn root(&mut self) -> [u8; 32] {
        for level in 0..self.dirty.len() {
            // `level` children feed `level + 1` parents.
            let (children, parents) = self.levels.split_at_mut(level + 1);
            for (parent, flag) in self.dirty[level].iter_mut().enumerate() {
                if *flag {
                    *flag = false;
                    parents[0][parent] = Self::hash_children(&children[level], parent);
                }
            }
        }
        let mut h = Sha256::new();
        for node in self.levels.last().into_iter().flatten() {
            h.update(node);
        }
        h.finalize()
    }

    /// Rebuilds a tree from the raw shadow-region contents (recovery
    /// path) so its root can be compared with the persisted one.
    pub fn from_region<'a>(entries: impl ExactSizeIterator<Item = &'a [u8; 64]>) -> Self {
        let slots = entries.len() as u64;
        let mut tree = Self::new(slots);
        for (slot, bytes) in entries.enumerate() {
            tree.update(slot as u64, bytes);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ShadowRecord {
        ShadowRecord {
            meta: MetaId::new(2, 0x0012_3456_789a),
            lsbs: [1, 2, 3, 4, 5, 6, 7, 8],
            mac: 0xdead_beef_0bad_f00d,
        }
    }

    #[test]
    fn plain_roundtrip() {
        let e = encode_entry(&record(), ShadowMode::Plain);
        assert_eq!(decode_entry(&e, ShadowMode::Plain), vec![record()]);
    }

    #[test]
    fn duplicated_roundtrip_dedupes() {
        let e = encode_entry(&record(), ShadowMode::Duplicated);
        assert_eq!(decode_entry(&e, ShadowMode::Duplicated), vec![record()]);
    }

    #[test]
    fn vacant_decodes_empty() {
        assert!(decode_entry(&vacant_entry(), ShadowMode::Duplicated).is_empty());
        assert!(decode_entry(&vacant_entry(), ShadowMode::Plain).is_empty());
    }

    #[test]
    fn corrupted_first_copy_recovered_from_second() {
        let mut e = encode_entry(&record(), ShadowMode::Duplicated);
        for b in &mut e[..31] {
            *b ^= 0x5a; // trash copy A (keeps level nonzero incidentally)
        }
        let candidates = decode_entry(&e, ShadowMode::Duplicated);
        assert!(candidates.contains(&record()), "intact copy B must survive");
    }

    #[test]
    fn plain_mode_loses_corrupted_entry() {
        let mut e = encode_entry(&record(), ShadowMode::Plain);
        e[0] ^= 0xff;
        let candidates = decode_entry(&e, ShadowMode::Plain);
        assert!(!candidates.contains(&record()));
    }

    #[test]
    fn copies_live_in_distinct_codewords() {
        // Chipkill beats are 18 bytes: bytes 0..31 span beats 0..1, bytes
        // 32..63 span beats 2..3 of the *data* layout. The assertion here
        // is structural: the two copies occupy disjoint 32-byte halves.
        let e = encode_entry(&record(), ShadowMode::Duplicated);
        assert_eq!(&e[..31], &e[32..63]);
    }

    #[test]
    fn tree_root_changes_with_updates() {
        let mut t = ShadowTree::new(100);
        let r0 = t.root();
        t.update(42, &encode_entry(&record(), ShadowMode::Duplicated));
        let r1 = t.root();
        assert_ne!(r0, r1);
        // Reverting the slot restores the root.
        t.update(42, &vacant_entry());
        assert_eq!(t.root(), r0);
    }

    #[test]
    fn from_region_matches_incremental() {
        let mut t = ShadowTree::new(20);
        let mut region: Vec<[u8; 64]> = vec![vacant_entry(); 20];
        for slot in [0u64, 7, 8, 19] {
            let mut r = record();
            r.meta.index = slot;
            let e = encode_entry(&r, ShadowMode::Duplicated);
            region[slot as usize] = e;
            t.update(slot, &e);
        }
        let mut rebuilt = ShadowTree::from_region(region.iter());
        assert_eq!(rebuilt.root(), t.root());
    }

    #[test]
    fn tamper_with_region_changes_rebuilt_root() {
        let mut t = ShadowTree::new(10);
        let mut region: Vec<[u8; 64]> = vec![vacant_entry(); 10];
        region[3][5] ^= 1;
        let mut rebuilt = ShadowTree::from_region(region.iter());
        assert_ne!(rebuilt.root(), t.root());
    }

    #[test]
    fn large_index_roundtrips_through_48_bits() {
        let mut r = record();
        r.meta.index = (1 << 48) - 1;
        let e = encode_entry(&r, ShadowMode::Plain);
        assert_eq!(
            decode_entry(&e, ShadowMode::Plain)[0].meta.index,
            (1 << 48) - 1
        );
    }
}
