//! The on-chip metadata cache (Table 3: 512 kB, 8-way, write-back).
//!
//! Counter blocks and ToC nodes are cached together. The cache is
//! write-back: a block updated in the cache is **not** written to NVM
//! until evicted — the lazy-update scheme whose eviction rate (Fig. 4 /
//! Fig. 10c) determines Soteria's entire cost.
//!
//! Each (set, way) slot has a fixed index that doubles as the Anubis
//! shadow-table slot for whatever block occupies it.

use soteria_nvm::LineAddr;

use crate::layout::MetaId;

/// A metadata block resident in the cache.
#[derive(Clone, Debug)]
pub struct CachedBlock {
    /// Which tree block this is.
    pub meta: MetaId,
    /// Serialized 64-byte content.
    pub data: [u8; 64],
    /// Modified since fetch (write-back pending). Private so every
    /// transition goes through [`MetadataCache::mark_dirty`] /
    /// [`MetadataCache::mark_clean`], which keep the incremental dirty
    /// index consistent with the flag.
    dirty: bool,
    /// Per-slot update counts since the last writeback (Osiris bounds
    /// counter trials by bounding in-cache updates). Only meaningful for
    /// leaf counter blocks.
    pub slot_updates: [u8; 64],
}

impl CachedBlock {
    /// Wraps freshly fetched (clean) content.
    pub fn clean(meta: MetaId, data: [u8; 64]) -> Self {
        Self {
            meta,
            data,
            dirty: false,
            slot_updates: [0; 64],
        }
    }

    /// Wraps content already modified relative to NVM (write-back
    /// pending from the moment of insertion).
    pub fn modified(meta: MetaId, data: [u8; 64]) -> Self {
        Self {
            dirty: true,
            ..Self::clean(meta, data)
        }
    }

    /// Whether a write-back is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

#[derive(Clone, Debug)]
struct Entry {
    addr: LineAddr,
    block: CachedBlock,
    last_use: u64,
}

/// A block evicted to make room, together with its former shadow slot.
#[derive(Clone, Debug)]
pub struct Evicted {
    /// NVM address of the block's primary copy.
    pub addr: LineAddr,
    /// The block content and state.
    pub block: CachedBlock,
    /// The shadow slot it occupied.
    pub slot: u64,
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub dirty_evictions: u64,
    /// Clean evictions.
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Miss ratio over all lookups (0 when no lookups yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Set-associative write-back metadata cache with LRU replacement.
///
/// Residency is tracked by a tag **index** (address → global slot), so
/// `slot_of` / `contains` / `lookup` / `peek` resolve without scanning
/// the ways of a set; the set vectors remain the source of truth for LRU
/// and eviction. Nothing ever iterates the index, so the hash map's
/// nondeterministic iteration order cannot leak into simulation results.
#[derive(Clone, Debug)]
pub struct MetadataCache {
    sets: Vec<Vec<Option<Entry>>>,
    ways: usize,
    tick: u64,
    stats: CacheStats,
    // Nothing iterates the index (see the type docs above), so hash
    // order cannot leak into simulation results.
    // lint:allow(D2, keyed-access tag index is never iterated)
    index: std::collections::HashMap<LineAddr, u32>,
    // Incrementally maintained dirty index: the global slot of every
    // dirty resident block. A BTreeSet iterates in ascending slot order,
    // which IS the documented set-major, way-minor `dirty_addrs()`
    // contract — so the dirty scan costs O(dirty · log) instead of a
    // linear walk of every way, and stays fully deterministic.
    dirty_slots: std::collections::BTreeSet<u32>,
}

impl MetadataCache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity forms at least one power-of-two set.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        let lines = capacity_bytes / 64;
        assert!(
            ways > 0 && lines >= ways as u64,
            "cache too small for {ways} ways"
        );
        let sets = (lines / ways as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets: vec![vec![None; ways]; sets],
            ways,
            tick: 0,
            stats: CacheStats::default(),
            // lint:allow(D2, keyed-access tag index is never iterated)
            index: std::collections::HashMap::with_capacity(sets * ways),
            dirty_slots: std::collections::BTreeSet::new(),
        }
    }

    /// Table 3 configuration: 512 kB, 8-way.
    pub fn table3() -> Self {
        Self::new(512 * 1024, 8)
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total slots (= Anubis shadow-table size).
    pub fn slots(&self) -> u64 {
        (self.sets.len() * self.ways) as u64
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        (addr.index() % self.sets.len() as u64) as usize
    }

    /// The shadow slot a resident block occupies, if cached.
    pub fn slot_of(&self, addr: LineAddr) -> Option<u64> {
        self.index.get(&addr).map(|&slot| slot as u64)
    }

    /// Returns `true` if `addr` is resident (without touching LRU state).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Splits a global slot back into its (set, way) coordinates.
    fn coords(&self, slot: u32) -> (usize, usize) {
        (slot as usize / self.ways, slot as usize % self.ways)
    }

    /// Looks up a block, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&mut CachedBlock> {
        self.tick += 1;
        let tick = self.tick;
        match self.index.get(&addr) {
            Some(&slot) => {
                let (set, way) = self.coords(slot);
                let e = self.sets[set][way]
                    .as_mut()
                    // lint:allow(P1, the index maps only to occupied slots)
                    .expect("indexed slot is occupied");
                debug_assert_eq!(e.addr, addr);
                e.last_use = tick;
                self.stats.hits += 1;
                Some(&mut e.block)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at a block without LRU/stat side effects.
    pub fn peek(&self, addr: LineAddr) -> Option<&CachedBlock> {
        let &slot = self.index.get(&addr)?;
        let (set, way) = self.coords(slot);
        self.sets[set][way].as_ref().map(|e| &e.block)
    }

    /// Mutably peeks at a block without LRU/stat side effects.
    pub fn peek_mut(&mut self, addr: LineAddr) -> Option<&mut CachedBlock> {
        let &slot = self.index.get(&addr)?;
        let (set, way) = self.coords(slot);
        self.sets[set][way].as_mut().map(|e| &mut e.block)
    }

    /// Inserts a block, evicting the LRU non-pinned entry if the set is
    /// full. Returns the occupied shadow slot and the evicted entry (if
    /// any).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already resident, or if every way of the set is
    /// pinned (cannot happen when pins are bounded by tree depth and the
    /// associativity covers it — asserted rather than silently mishandled).
    pub fn insert(
        &mut self,
        addr: LineAddr,
        block: CachedBlock,
        pinned: &[LineAddr],
    ) -> (u64, Option<Evicted>) {
        assert!(!self.contains(addr), "{addr} already cached");
        self.tick += 1;
        let set = self.set_of(addr);
        let incoming_dirty = block.dirty;
        // Prefer an empty way.
        if let Some(way) = self.sets[set].iter().position(Option::is_none) {
            self.sets[set][way] = Some(Entry {
                addr,
                block,
                last_use: self.tick,
            });
            let slot = (set * self.ways + way) as u64;
            self.index.insert(addr, slot as u32);
            if incoming_dirty {
                self.dirty_slots.insert(slot as u32);
            }
            return (slot, None);
        }
        // Evict the least recently used way that is not pinned.
        let victim_way = self.sets[set]
            .iter()
            .enumerate()
            .filter_map(|(w, e)| e.as_ref().map(|e| (w, e)))
            .filter(|(_, e)| !pinned.contains(&e.addr))
            .min_by_key(|(_, e)| e.last_use)
            .map(|(w, _)| w)
            // Documented panic in the method docs: pins are bounded by
            // tree depth, which the associativity covers.
            // lint:allow(P1, documented panic when every way is pinned)
            .expect("at least one unpinned way (pins bounded by tree depth)");
        let old = self.sets[set][victim_way]
            .replace(Entry {
                addr,
                block,
                last_use: self.tick,
            })
            // lint:allow(P1, victim way is occupied since empty ways were claimed above)
            .expect("victim exists");
        if old.block.dirty {
            self.stats.dirty_evictions += 1;
        } else {
            self.stats.clean_evictions += 1;
        }
        let slot = (set * self.ways + victim_way) as u64;
        self.index.remove(&old.addr);
        self.index.insert(addr, slot as u32);
        if incoming_dirty {
            self.dirty_slots.insert(slot as u32);
        } else {
            self.dirty_slots.remove(&(slot as u32));
        }
        (
            slot,
            Some(Evicted {
                addr: old.addr,
                block: old.block,
                slot,
            }),
        )
    }

    /// Removes and returns a resident block (used by flush/crash paths).
    pub fn remove(&mut self, addr: LineAddr) -> Option<CachedBlock> {
        let slot = self.index.remove(&addr)?;
        self.dirty_slots.remove(&slot);
        let (set, way) = self.coords(slot);
        self.sets[set][way].take().map(|e| e.block)
    }

    /// Marks a resident block dirty (write-back pending), keeping the
    /// incremental dirty index in step. No-op when `addr` is not
    /// resident.
    pub fn mark_dirty(&mut self, addr: LineAddr) {
        if let Some(&slot) = self.index.get(&addr) {
            let (set, way) = self.coords(slot);
            if let Some(e) = self.sets[set][way].as_mut() {
                e.block.dirty = true;
                self.dirty_slots.insert(slot);
            }
        }
    }

    /// Marks a resident block clean (write-back completed), keeping the
    /// incremental dirty index in step. No-op when `addr` is not
    /// resident.
    pub fn mark_clean(&mut self, addr: LineAddr) {
        if let Some(&slot) = self.index.get(&addr) {
            let (set, way) = self.coords(slot);
            if let Some(e) = self.sets[set][way].as_mut() {
                e.block.dirty = false;
                self.dirty_slots.remove(&slot);
            }
        }
    }

    /// Addresses of all dirty resident blocks (for orderly flush).
    ///
    /// **Order contract**: addresses are yielded in **set-major,
    /// way-minor** order — never the hash-based tag index — so the
    /// sequence is a pure function of the insert/evict history. Same
    /// operation history ⇒ same iteration order, on every run and
    /// platform. The persist fixpoint loop, persist-path trace events
    /// and the crash-sweep test all rely on this stability; do not
    /// reimplement this over `self.index` (HashMap iteration order would
    /// leak into traces). Implemented over the incrementally maintained
    /// `dirty_slots` set: ascending global-slot order is exactly
    /// set-major, way-minor, and the scan is O(dirty) instead of a
    /// linear walk of every way.
    pub fn dirty_addrs(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.dirty_slots.iter().map(|&slot| {
            let (set, way) = self.coords(slot);
            let e = self.sets[set][way]
                .as_ref()
                // lint:allow(P1, the dirty index maps only to occupied slots)
                .expect("dirty slot is occupied");
            debug_assert!(e.block.dirty);
            e.addr
        })
    }

    /// Drops every entry (models volatile loss at crash).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                *way = None;
            }
        }
        self.index.clear();
        self.dirty_slots.clear();
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(level: u8, index: u64) -> CachedBlock {
        CachedBlock::clean(MetaId::new(level, index), [level; 64])
    }

    fn dirty_block(level: u8, index: u64) -> CachedBlock {
        CachedBlock::modified(MetaId::new(level, index), [level; 64])
    }

    fn tiny_cache() -> MetadataCache {
        // 2 sets x 2 ways.
        MetadataCache::new(4 * 64, 2)
    }

    #[test]
    fn table3_shape() {
        let c = MetadataCache::table3();
        assert_eq!(c.slots(), 8192);
        assert_eq!(c.set_count(), 1024);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn insert_lookup_hit() {
        let mut c = tiny_cache();
        let a = LineAddr::new(100);
        c.insert(a, block(1, 0), &[]);
        assert!(c.lookup(a).is_some());
        assert_eq!(c.stats().hits, 1);
        assert!(c.lookup(LineAddr::new(101)).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny_cache();
        // Addresses 0,2,4 map to set 0 (2 sets).
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.insert(a, block(1, 0), &[]);
        c.insert(b, block(1, 1), &[]);
        c.lookup(a); // b is now LRU
        let (_, evicted) = c.insert(d, block(1, 2), &[]);
        assert_eq!(evicted.unwrap().addr, b);
        assert!(c.contains(a) && c.contains(d) && !c.contains(b));
    }

    #[test]
    fn pinned_ways_survive() {
        let mut c = tiny_cache();
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.insert(a, block(1, 0), &[]);
        c.insert(b, block(1, 1), &[]);
        c.lookup(a);
        // b would be LRU, but it is pinned: a gets evicted instead.
        let (_, evicted) = c.insert(d, block(1, 2), &[b]);
        assert_eq!(evicted.unwrap().addr, a);
        assert!(c.contains(b));
    }

    #[test]
    fn dirty_eviction_counted() {
        let mut c = tiny_cache();
        c.insert(LineAddr::new(0), dirty_block(1, 0), &[]);
        c.insert(LineAddr::new(2), block(1, 1), &[]);
        c.insert(LineAddr::new(4), block(1, 2), &[]);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn slots_are_stable_per_way() {
        let mut c = tiny_cache();
        let a = LineAddr::new(1); // set 1
        let (slot, _) = c.insert(a, block(1, 0), &[]);
        assert_eq!(c.slot_of(a), Some(slot));
        assert_eq!(slot, 2); // set 1, way 0 => 1*2+0
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = tiny_cache();
        c.insert(LineAddr::new(0), block(1, 0), &[]);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(LineAddr::new(0)));
    }

    #[test]
    fn dirty_addrs_lists_only_dirty() {
        let mut c = tiny_cache();
        c.insert(LineAddr::new(0), dirty_block(1, 0), &[]);
        c.insert(LineAddr::new(1), block(1, 1), &[]);
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![LineAddr::new(0)]);
    }

    #[test]
    fn dirty_addrs_order_is_set_major_way_minor() {
        // The documented order contract: set-major, way-minor, independent
        // of insertion order across sets and of the hash index. With
        // 2 sets x 2 ways, odd addresses land in set 1 and even in set 0;
        // inserting set-1 blocks first must not let them lead the
        // iteration.
        let mut c = tiny_cache();
        for (addr, idx) in [(5u64, 0u64), (1, 1), (4, 2), (0, 3)] {
            c.insert(LineAddr::new(addr), dirty_block(1, idx), &[]);
        }
        let order: Vec<u64> = c.dirty_addrs().map(|a| a.index()).collect();
        // Set 0 filled way 0 with 4 then way 1 with 0; set 1 filled way 0
        // with 5 then way 1 with 1.
        assert_eq!(order, vec![4, 0, 5, 1]);
        // Stable across repeated iteration (no interior mutation).
        assert_eq!(order, c.dirty_addrs().map(|a| a.index()).collect::<Vec<_>>());
    }

    #[test]
    fn mark_dirty_and_clean_drive_dirty_addrs() {
        let mut c = tiny_cache();
        let (a, b) = (LineAddr::new(0), LineAddr::new(2));
        c.insert(a, block(1, 0), &[]);
        c.insert(b, block(1, 1), &[]);
        assert_eq!(c.dirty_addrs().count(), 0);
        c.mark_dirty(b);
        assert!(c.peek(b).unwrap().is_dirty());
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![b]);
        c.mark_dirty(a);
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![a, b]);
        // Marking twice is idempotent.
        c.mark_dirty(a);
        assert_eq!(c.dirty_addrs().count(), 2);
        c.mark_clean(b);
        assert!(!c.peek(b).unwrap().is_dirty());
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![a]);
        // Non-resident addresses are no-ops.
        c.mark_dirty(LineAddr::new(99));
        c.mark_clean(LineAddr::new(99));
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn dirty_index_survives_evict_remove_clear() {
        let mut c = tiny_cache();
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.insert(a, dirty_block(1, 0), &[]);
        c.insert(b, dirty_block(1, 1), &[]);
        // Evicting dirty `a` (LRU) with a clean block must drop its slot
        // from the dirty index.
        c.lookup(b);
        let (_, ev) = c.insert(d, block(1, 2), &[]);
        assert_eq!(ev.unwrap().addr, a);
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![b]);
        // Evicting clean `d` with a dirty block adds the slot back.
        c.lookup(b);
        let (_, ev) = c.insert(a, dirty_block(1, 3), &[]);
        assert_eq!(ev.unwrap().addr, d);
        assert_eq!(c.dirty_addrs().count(), 2);
        // remove() drops the slot; clear() drops everything.
        c.remove(a);
        assert_eq!(c.dirty_addrs().collect::<Vec<_>>(), vec![b]);
        c.clear();
        assert_eq!(c.dirty_addrs().count(), 0);
    }

    #[test]
    fn index_consistent_through_insert_evict_remove_clear() {
        // The tag index must agree with a linear scan of the ways after
        // every mutation, and resolved slots must round-trip.
        fn check(c: &MetadataCache, universe: &[LineAddr]) {
            let mut scanned = 0usize;
            for &addr in universe {
                let set = (addr.index() % c.set_count() as u64) as usize;
                let linear = (0..c.ways()).find_map(|way| {
                    let slot = (set * c.ways() + way) as u64;
                    c.peek(addr)?;
                    // peek goes through the index; cross-check against
                    // slot_of and the actual slot arithmetic.
                    (c.slot_of(addr) == Some(slot)).then_some(slot)
                });
                if c.contains(addr) {
                    assert_eq!(c.slot_of(addr), linear, "{addr}");
                    scanned += 1;
                } else {
                    assert_eq!(c.slot_of(addr), None, "{addr}");
                }
            }
            assert_eq!(c.len(), scanned);
        }
        let universe: Vec<LineAddr> = (0..12).map(LineAddr::new).collect();
        let mut c = tiny_cache();
        for i in 0..8u64 {
            c.insert(LineAddr::new(i), block(1, i), &[]);
            check(&c, &universe);
        }
        c.remove(LineAddr::new(6));
        check(&c, &universe);
        c.insert(LineAddr::new(10), block(2, 10), &[]);
        check(&c, &universe);
        c.clear();
        check(&c, &universe);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_rejected() {
        let mut c = tiny_cache();
        c.insert(LineAddr::new(0), block(1, 0), &[]);
        c.insert(LineAddr::new(0), block(1, 0), &[]);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny_cache();
        c.insert(LineAddr::new(0), block(1, 0), &[]);
        c.lookup(LineAddr::new(0));
        c.lookup(LineAddr::new(9));
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
