#![warn(missing_docs)]

//! **Soteria** — a resilient, integrity-protected and encrypted NVM
//! memory controller (reproduction of Zubair, Gurumurthi, Sridharan &
//! Awad, MICRO 2021).
//!
//! Security metadata — counter-mode encryption counters and the nodes of
//! a Tree-of-Counters (ToC) integrity tree — lives in the NVM it
//! protects, and a single uncorrectable error in an upper tree node can
//! render gigabytes of data unverifiable (§2.7, Fig. 3). Soteria fixes
//! this by **lazily cloning** metadata blocks when they are evicted from
//! the metadata cache: one clone everywhere (SRC) or progressively more
//! clones toward the root (SAC, Table 2), committed atomically through
//! the WPQ. The reliability of security metadata is thereby decoupled
//! from the DIMM's own ECC.
//!
//! # Crate map
//!
//! | module | paper concept |
//! |---|---|
//! | [`controller`] | the secure memory controller datapath (Fig. 7) |
//! | [`counter`] | 64-ary split-counter blocks (§2.4) |
//! | [`morphable`] | 128-ary morphable counters, Saileshwar et al. (§2.4) |
//! | [`toc`] | 8-ary ToC nodes with embedded MACs (Fig. 2) |
//! | [`layout`] | metadata + clone memory map (§3.1) |
//! | [`mdcache`] | 512 kB write-back metadata cache (Table 3) |
//! | [`shadow`] | Anubis shadow table, duplicated entries (Fig. 8) |
//! | [`clone`] | SRC/SAC cloning policies (Table 2) |
//! | [`policy`] | pluggable protection schemes (compare matrix, §6) |
//! | [`recovery`] | Anubis + Osiris crash recovery (§2.6, Table 1) |
//! | [`analysis`] | expected loss (Fig. 3) and UDR (Figs. 11–12) |
//! | [`stats`] | eviction/write accounting (Figs. 4, 10) |
//!
//! # Quick start
//!
//! ```
//! use soteria::{CloningPolicy, DataAddr, SecureMemoryConfig, SecureMemoryController};
//!
//! let config = SecureMemoryConfig::builder()
//!     .capacity_bytes(1 << 20)
//!     .metadata_cache(8 * 1024, 4)
//!     .cloning(CloningPolicy::Relaxed) // SRC
//!     .build()?;
//! let mut memory = SecureMemoryController::new(config);
//! memory.write(DataAddr::new(0), &[42u8; 64])?;
//! assert_eq!(memory.read(DataAddr::new(0))?[0], 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod clone;
pub mod config;
pub mod controller;
pub mod counter;
pub mod error;
pub mod layout;
pub mod mdcache;
pub mod morphable;
pub mod policy;
pub mod recovery;
pub mod shadow;
pub mod stats;
pub mod toc;

pub use analysis::{LeafRecovery, LossProfile, SchemeLoss};
pub use clone::CloningPolicy;
pub use config::{EccKind, Fidelity, SecureMemoryConfig, TreeUpdate};
pub use controller::{CommitReceipt, SecureMemoryController, Transaction};
pub use error::{ConfigError, MemoryError};
pub use layout::{MemoryLayout, MetaId};
pub use policy::{scheme_by_name, standard_schemes, ProtectionPolicy, RecoveryStrategy};
pub use recovery::{recover, recover_exhaustive, CrashImage, RecoveryReport};
pub use stats::ControllerStats;

/// The index of a 64-byte line within the *protected data* address space
/// (distinct from [`soteria_nvm::LineAddr`], which addresses the physical
/// device including metadata regions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataAddr(u64);

impl DataAddr {
    /// Creates a data address from a line index.
    pub fn new(index: u64) -> Self {
        Self(index)
    }

    /// Creates a data address from a byte address.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not 64-byte aligned.
    pub fn from_byte_addr(byte_addr: u64) -> Self {
        assert!(
            byte_addr.is_multiple_of(64),
            "byte address {byte_addr:#x} is not line-aligned"
        );
        Self(byte_addr / 64)
    }

    /// The line index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the line start.
    pub fn byte_addr(self) -> u64 {
        self.0 * 64
    }
}

impl std::fmt::Display for DataAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "data line {:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_addr_roundtrip() {
        let a = DataAddr::from_byte_addr(4096);
        assert_eq!(a.index(), 64);
        assert_eq!(a.byte_addr(), 4096);
    }

    #[test]
    #[should_panic(expected = "not line-aligned")]
    fn unaligned_rejected() {
        let _ = DataAddr::from_byte_addr(100);
    }

    #[test]
    fn display_nonempty() {
        assert!(!DataAddr::new(1).to_string().is_empty());
    }
}
