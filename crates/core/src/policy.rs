//! Pluggable protection policies: the persist decisions, tree-update
//! strategy, recovery hook and loss accounting of one metadata-protection
//! scheme, bundled behind a single trait.
//!
//! The controller itself stays scheme-agnostic — it consults the
//! [`TreeUpdate`] strategy carried by its config — and a scheme is just a
//! small object that picks the knobs: which cloning policy runs
//! (Baseline / SRC / SAC, Table 2), how tree updates propagate
//! (lazy / eager / Triad-NVM tiers / Phoenix / coalesced), which recovery
//! path a crash image goes through (Anubis shadow replay or the
//! exhaustive Osiris scan), and what the Monte Carlo loss model may
//! credit that recovery with reconstructing ([`LossProfile`]).
//!
//! [`standard_schemes`] is the registry the `soteria compare` campaign
//! sweeps; its first entries re-express the schemes the repo already
//! shipped (and the golden fixtures prove they behave byte-identically
//! through this trait).

use crate::analysis::{LeafRecovery, LossProfile};
use crate::clone::CloningPolicy;
use crate::config::{SecureMemoryConfig, TreeUpdate};
use crate::controller::SecureMemoryController;
use crate::error::ConfigError;
use crate::recovery::{recover, recover_exhaustive, CrashImage, RecoveryReport};
use crate::shadow::ShadowMode;

/// Which recovery routine a scheme's crash images go through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryStrategy {
    /// Anubis shadow-table replay (§2.6): walk the shadow region and
    /// restore every tracked block that went stale.
    #[default]
    AnubisShadow,
    /// Exhaustive Osiris-style scan: re-derive counters from data MACs by
    /// bounded forward trials over the whole device (no shadow table
    /// needed; slower, and unshadowed tree nodes stay unverified).
    OsirisScan,
}

/// One metadata-protection scheme, as the compare campaign and the
/// trait-based harness see it.
pub trait ProtectionPolicy: Sync {
    /// Stable artifact/CLI identifier (`baseline`, `src`, `triad1`, …).
    fn name(&self) -> &'static str;

    /// One-line description for listings and reports.
    fn summary(&self) -> &'static str;

    /// The metadata cloning policy (persist-redundancy decision).
    fn cloning(&self) -> CloningPolicy;

    /// The tree-update strategy the controller runs.
    fn tree_update(&self) -> TreeUpdate {
        TreeUpdate::Lazy
    }

    /// Shadow-entry format (only meaningful where the strategy keeps a
    /// shadow table at all).
    fn shadow_mode(&self) -> ShadowMode {
        ShadowMode::Duplicated
    }

    /// The recovery hook for crash images of this scheme.
    fn recovery(&self) -> RecoveryStrategy {
        RecoveryStrategy::AnubisShadow
    }

    /// What the loss model may credit this scheme's recovery with
    /// reconstructing.
    fn loss_profile(&self) -> LossProfile {
        LossProfile::default()
    }

    /// Builds a controller configuration for this scheme over the given
    /// harness geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid shapes, exactly as the
    /// underlying builder does.
    fn build_config(
        &self,
        capacity_bytes: u64,
        cache_bytes: u64,
        cache_ways: usize,
        wpq_entries: usize,
    ) -> Result<SecureMemoryConfig, ConfigError> {
        let mut builder = SecureMemoryConfig::builder();
        builder
            .capacity_bytes(capacity_bytes)
            .metadata_cache(cache_bytes, cache_ways)
            .wpq_entries(wpq_entries)
            .cloning(self.cloning())
            .tree_update(self.tree_update())
            .shadow_mode(self.shadow_mode());
        builder.build()
    }

    /// Runs this scheme's recovery hook over a crash image.
    fn recover(&self, image: CrashImage) -> (SecureMemoryController, RecoveryReport) {
        match self.recovery() {
            RecoveryStrategy::AnubisShadow => recover(image),
            RecoveryStrategy::OsirisScan => recover_exhaustive(image),
        }
    }
}

/// Baseline: no metadata clones, lazy tree, Anubis recovery (Fig. 3's
/// exposure case).
#[derive(Clone, Copy, Debug, Default)]
pub struct Baseline;

impl ProtectionPolicy for Baseline {
    fn name(&self) -> &'static str {
        "baseline"
    }
    fn summary(&self) -> &'static str {
        "no clones, lazy ToC, Anubis shadow recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::None
    }
}

/// SRC: single relaxed clone of every metadata block (Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Src;

impl ProtectionPolicy for Src {
    fn name(&self) -> &'static str {
        "src"
    }
    fn summary(&self) -> &'static str {
        "one clone per metadata block, lazy ToC, Anubis recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::Relaxed
    }
}

/// SAC: progressively more clones toward the root (Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sac;

impl ProtectionPolicy for Sac {
    fn name(&self) -> &'static str {
        "sac"
    }
    fn summary(&self) -> &'static str {
        "level-scaled clones, lazy ToC, Anubis recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::Aggressive
    }
}

/// Osiris [Ye et al.]: no clones and no shadow replay at recovery — a
/// crash is survived by exhaustive bounded forward MAC trials, which also
/// lets the loss model re-derive a destroyed leaf whose covered data
/// survived.
#[derive(Clone, Copy, Debug, Default)]
pub struct Osiris;

impl ProtectionPolicy for Osiris {
    fn name(&self) -> &'static str {
        "osiris"
    }
    fn summary(&self) -> &'static str {
        "lazy ToC, exhaustive forward-trial recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::None
    }
    fn recovery(&self) -> RecoveryStrategy {
        RecoveryStrategy::OsirisScan
    }
    fn loss_profile(&self) -> LossProfile {
        LossProfile {
            rebuild_floor: u8::MAX,
            leaf: LeafRecovery::Trials,
        }
    }
}

/// Triad-NVM [Awad et al., arXiv 1810.09438] selective-persistence tier:
/// persist the tree strictly up to `tier` levels, rebuild the rest at
/// recovery.
#[derive(Clone, Copy, Debug, Default)]
pub struct Triad {
    /// Levels (from the leaves) written through on every commit (0–2 in
    /// the standard roster).
    pub tier: u8,
}

impl ProtectionPolicy for Triad {
    fn name(&self) -> &'static str {
        match self.tier {
            0 => "triad0",
            1 => "triad1",
            2 => "triad2",
            _ => "triad",
        }
    }
    fn summary(&self) -> &'static str {
        match self.tier {
            0 => "Triad-NVM tier 0: nothing persisted strictly, tree rebuilt at recovery",
            1 => "Triad-NVM tier 1: counters write-through, tree rebuilt at recovery",
            _ => "Triad-NVM tier 2+: counters and low tree write-through",
        }
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::None
    }
    fn tree_update(&self) -> TreeUpdate {
        TreeUpdate::Triad {
            persist_levels: self.tier,
        }
    }
    fn loss_profile(&self) -> LossProfile {
        LossProfile {
            rebuild_floor: 2,
            leaf: if self.tier >= 1 {
                // Write-through leaves are fresh in NVM: a destroyed
                // block re-derives by bounded trials over survivors.
                LeafRecovery::Trials
            } else {
                LeafRecovery::Fatal
            },
        }
    }
}

/// Phoenix [Alwadi et al., arXiv 1911.01922]: persistent NVM-friendly
/// ToC — leaves write through, the upper tree refolds from them at
/// recovery, and no Anubis shadow table is kept at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct Phoenix;

impl ProtectionPolicy for Phoenix {
    fn name(&self) -> &'static str {
        "phoenix"
    }
    fn summary(&self) -> &'static str {
        "persistent ToC: write-through counters, shadow-free rebuild recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::None
    }
    fn tree_update(&self) -> TreeUpdate {
        TreeUpdate::Phoenix
    }
    fn recovery(&self) -> RecoveryStrategy {
        RecoveryStrategy::OsirisScan
    }
    fn loss_profile(&self) -> LossProfile {
        LossProfile {
            rebuild_floor: 2,
            leaf: LeafRecovery::Trials,
        }
    }
}

/// Coalesced lazy tree updates ["Streamlining Integrity Tree Updates",
/// arXiv 2003.04693]: lazy between flush points, with the dirty ancestor
/// paths flushed in one batch every `period` commit groups.
#[derive(Clone, Copy, Debug)]
pub struct Coalesced {
    /// Commit groups per batched flush.
    pub period: u16,
}

impl Default for Coalesced {
    fn default() -> Self {
        Self { period: 4 }
    }
}

impl ProtectionPolicy for Coalesced {
    fn name(&self) -> &'static str {
        "coalesced"
    }
    fn summary(&self) -> &'static str {
        "lazy ToC with periodic batched tree flushes, Anubis recovery"
    }
    fn cloning(&self) -> CloningPolicy {
        CloningPolicy::None
    }
    fn tree_update(&self) -> TreeUpdate {
        TreeUpdate::Coalesced {
            period: self.period,
        }
    }
}

/// The registered scheme roster, in report order. The first three
/// re-express the repo's pre-existing Baseline/SRC/SAC campaign schemes
/// (same cloning policies, same lazy tree, same Anubis recovery), and
/// `osiris` re-expresses the pre-existing exhaustive-recovery path.
pub fn standard_schemes() -> &'static [&'static dyn ProtectionPolicy] {
    const SCHEMES: &[&'static dyn ProtectionPolicy] = &[
        &Baseline,
        &Src,
        &Sac,
        &Osiris,
        &Triad { tier: 0 },
        &Triad { tier: 1 },
        &Triad { tier: 2 },
        &Phoenix,
        &Coalesced { period: 4 },
    ];
    SCHEMES
}

/// Looks a registered scheme up by its stable name.
pub fn scheme_by_name(name: &str) -> Option<&'static dyn ProtectionPolicy> {
    standard_schemes().iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_large_unique_and_buildable() {
        let schemes = standard_schemes();
        assert!(schemes.len() >= 6, "compare needs at least six schemes");
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate scheme name");
        for s in schemes {
            let config = s
                .build_config(1 << 20, 16 * 1024, 8, 8)
                .unwrap_or_else(|e| panic!("{} must build: {e:?}", s.name()));
            assert_eq!(config.cloning(), &s.cloning());
            assert_eq!(config.tree_update(), s.tree_update());
            assert!(!s.summary().is_empty());
        }
    }

    #[test]
    fn first_three_schemes_are_the_campaign_policies() {
        let schemes = standard_schemes();
        assert_eq!(schemes[0].cloning(), CloningPolicy::None);
        assert_eq!(schemes[1].cloning(), CloningPolicy::Relaxed);
        assert_eq!(schemes[2].cloning(), CloningPolicy::Aggressive);
        for s in &schemes[..3] {
            assert_eq!(s.tree_update(), TreeUpdate::Lazy);
            assert_eq!(s.recovery(), RecoveryStrategy::AnubisShadow);
            assert_eq!(s.loss_profile(), LossProfile::default());
        }
    }

    #[test]
    fn lookup_finds_every_registered_name() {
        for s in standard_schemes() {
            let found = scheme_by_name(s.name()).expect("lookup");
            assert_eq!(found.name(), s.name());
        }
        assert!(scheme_by_name("nope").is_none());
    }

    #[test]
    fn tier_profiles_order_by_recoverability() {
        // tier0 loses leaves fatally, tier1+ re-derives them; all tiers
        // rebuild the upper tree. This is what drives the paper-figure
        // ordering triad2 <= triad1 <= triad0 in UDR.
        assert_eq!(Triad { tier: 0 }.loss_profile().leaf, LeafRecovery::Fatal);
        assert_eq!(Triad { tier: 1 }.loss_profile().leaf, LeafRecovery::Trials);
        assert_eq!(Triad { tier: 2 }.loss_profile().leaf, LeafRecovery::Trials);
        assert_eq!(Triad { tier: 0 }.loss_profile().rebuild_floor, 2);
    }
}
