//! Controller statistics: the raw material for Figs. 4 and 10.

/// Why an NVM write was issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WriteCategory {
    /// Encrypted data line (the application's write).
    Cipher,
    /// Data-MAC line update.
    DataMac,
    /// Anubis shadow-table entry.
    Shadow,
    /// Dirty metadata block written back on eviction.
    Eviction,
    /// Leaf-MAC line update accompanying a counter-block writeback.
    LeafMac,
    /// Soteria clone copy.
    Clone,
    /// Page re-encryption traffic after a minor-counter overflow.
    Reencrypt,
    /// Clone-repair purification write.
    Repair,
}

/// NVM write counts split by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteBreakdown {
    /// Encrypted data lines.
    pub cipher: u64,
    /// Data-MAC lines.
    pub data_mac: u64,
    /// Shadow entries.
    pub shadow: u64,
    /// Metadata writebacks.
    pub eviction: u64,
    /// Leaf-MAC lines.
    pub leaf_mac: u64,
    /// Clone copies.
    pub clone: u64,
    /// Page re-encryption.
    pub reencrypt: u64,
    /// Clone-repair purification.
    pub repair: u64,
}

impl WriteBreakdown {
    /// Records one write of the given category.
    pub fn record(&mut self, category: WriteCategory) {
        match category {
            WriteCategory::Cipher => self.cipher += 1,
            WriteCategory::DataMac => self.data_mac += 1,
            WriteCategory::Shadow => self.shadow += 1,
            WriteCategory::Eviction => self.eviction += 1,
            WriteCategory::LeafMac => self.leaf_mac += 1,
            WriteCategory::Clone => self.clone += 1,
            WriteCategory::Reencrypt => self.reencrypt += 1,
            WriteCategory::Repair => self.repair += 1,
        }
    }

    /// Total writes across all categories.
    pub fn total(&self) -> u64 {
        self.cipher
            + self.data_mac
            + self.shadow
            + self.eviction
            + self.leaf_mac
            + self.clone
            + self.reencrypt
            + self.repair
    }
}

/// Aggregate controller statistics.
#[derive(Clone, Debug, Default)]
pub struct ControllerStats {
    /// Application-level line reads served.
    pub data_reads: u64,
    /// Application-level line writes served.
    pub data_writes: u64,
    /// NVM line reads issued (data + metadata + MAC).
    pub nvm_reads: u64,
    /// NVM line writes issued.
    pub nvm_writes: u64,
    /// Write causes.
    pub writes: WriteBreakdown,
    /// Dirty metadata evictions per tree level; index 0 = L1 (leaves).
    pub evictions_by_level: Vec<u64>,
    /// Minor-counter overflows that re-encrypted a page.
    pub page_reencryptions: u64,
    /// Osiris early writebacks (update-limit reached in cache).
    pub osiris_writebacks: u64,
    /// Metadata blocks successfully purified from clones.
    pub clone_repairs: u64,
    /// Crash-staleness repairs: verifications that matched one pending
    /// parent bump ahead (or a data MAC up to `osiris_limit` counter
    /// bumps ahead) and folded the skew back into volatile state.
    pub forward_repairs: u64,
    /// Uncorrectable errors observed on data lines.
    pub data_ue: u64,
    /// Uncorrectable errors observed on metadata (pre-repair).
    pub metadata_ue: u64,
}

impl ControllerStats {
    /// Records a dirty eviction at `level` (1-based).
    pub fn record_eviction(&mut self, level: u8) {
        let idx = level as usize - 1;
        if self.evictions_by_level.len() <= idx {
            self.evictions_by_level.resize(idx + 1, 0);
        }
        self.evictions_by_level[idx] += 1;
    }

    /// Total dirty metadata evictions.
    pub fn total_evictions(&self) -> u64 {
        self.evictions_by_level.iter().sum()
    }

    /// Memory operations (application reads + writes).
    pub fn memory_ops(&self) -> u64 {
        self.data_reads + self.data_writes
    }

    /// Evictions per memory operation (Fig. 10c's metric).
    pub fn evictions_per_op(&self) -> f64 {
        let ops = self.memory_ops();
        if ops == 0 {
            0.0
        } else {
            self.total_evictions() as f64 / ops as f64
        }
    }

    /// Fraction of evictions from each level (Fig. 4's metric).
    pub fn eviction_level_fractions(&self) -> Vec<f64> {
        let total = self.total_evictions();
        if total == 0 {
            return vec![0.0; self.evictions_by_level.len()];
        }
        self.evictions_by_level
            .iter()
            .map(|&e| e as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_records_and_totals() {
        let mut b = WriteBreakdown::default();
        b.record(WriteCategory::Cipher);
        b.record(WriteCategory::Cipher);
        b.record(WriteCategory::Clone);
        assert_eq!(b.cipher, 2);
        assert_eq!(b.clone, 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn eviction_levels_grow_on_demand() {
        let mut s = ControllerStats::default();
        s.record_eviction(3);
        s.record_eviction(1);
        s.record_eviction(3);
        assert_eq!(s.evictions_by_level, vec![1, 0, 2]);
        assert_eq!(s.total_evictions(), 3);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut s = ControllerStats::default();
        for _ in 0..7 {
            s.record_eviction(1);
        }
        for _ in 0..3 {
            s.record_eviction(2);
        }
        let f = s.eviction_level_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn evictions_per_op_guard_against_zero() {
        let s = ControllerStats::default();
        assert_eq!(s.evictions_per_op(), 0.0);
    }
}
