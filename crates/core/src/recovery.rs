//! Crash recovery: Anubis shadow-table restore + Osiris counter recovery,
//! hardened by Soteria's duplicated shadow entries and metadata clones.
//!
//! After a power loss the NVM holds: all data/MAC/shadow writes that
//! reached the WPQ (ADR), the *stale* memory copies of metadata blocks
//! that were dirty in the volatile cache, and the shadow table describing
//! exactly which blocks those were. Recovery proceeds **top-down**:
//!
//! 1. rebuild the shadow BMT from the region and compare with the
//!    persisted root (replay detection),
//! 2. for every shadow entry (trying both duplicated copies if they
//!    disagree): reconstruct the block from its stale memory copy — ToC
//!    counters get their 16-bit LSBs patched forward; leaf counter blocks
//!    go through **Osiris trials** (try up to `osiris_limit` increments of
//!    each minor counter against the line's data MAC),
//! 3. verify the reconstruction against the entry's MAC, refresh the
//!    block's tree MAC, and write it (plus its clones) back.
//!
//! A block whose memory copy is uncorrectable consults its clones
//! (Fig. 9); only if every copy fails is the subtree reported
//! unverifiable — the quantity UDR measures.

use soteria_crypto::ctr::CounterModeCipher;
use soteria_crypto::mac::MacEngine;
use soteria_ecc::CorrectionOutcome;
use soteria_nvm::device::NvmDimm;
use soteria_rt::obs::Obs;
use soteria_rt::obs_fields;

use crate::config::{Fidelity, SecureMemoryConfig};
use crate::controller::SecureMemoryController;
use crate::counter::{CounterBlock, MINOR_LIMIT};
use crate::layout::{MemoryLayout, MetaId, COUNTERS_PER_BLOCK};
use crate::shadow::{decode_entry, ShadowRecord, ShadowTree};
use crate::toc::TocNode;
use crate::DataAddr;

/// The persistent state surviving a crash: NVM contents plus the
/// controller's persistent register file (ToC root, shadow root).
pub struct CrashImage {
    config: SecureMemoryConfig,
    device: NvmDimm,
    root: TocNode,
    shadow_root: [u8; 32],
    /// The crashed controller's observability handle, carried across the
    /// power loss so recovery events (`"rec"` domain) extend the same
    /// trace. Trace state is volatile in real hardware; keeping it here
    /// is a debugging convenience, not an architectural claim.
    obs: Obs,
    /// WPQ event journal (empty unless the crashed controller had
    /// `enable_wpq_journal` on) — replayable against the pure queue
    /// model in `soteria_rt::crashck`.
    wpq_journal: Vec<soteria_rt::crashck::WpqEventRecord>,
}

impl std::fmt::Debug for CrashImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashImage")
            .field("capacity_bytes", &self.config.capacity_bytes())
            .finish_non_exhaustive()
    }
}

impl CrashImage {
    pub(crate) fn new(
        config: SecureMemoryConfig,
        device: NvmDimm,
        root: TocNode,
        shadow_root: [u8; 32],
    ) -> Self {
        Self {
            config,
            device,
            root,
            shadow_root,
            obs: Obs::disabled(),
            wpq_journal: Vec::new(),
        }
    }

    pub(crate) fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    pub(crate) fn with_wpq_journal(
        mut self,
        journal: Vec<soteria_rt::crashck::WpqEventRecord>,
    ) -> Self {
        self.wpq_journal = journal;
        self
    }

    /// The WPQ event journal recorded up to the crash (including the ADR
    /// flush), for replay against `soteria_rt::crashck::replay_journal`.
    /// Empty unless the crashed controller enabled journaling.
    pub fn wpq_journal(&self) -> &[soteria_rt::crashck::WpqEventRecord] {
        &self.wpq_journal
    }

    /// The observability handle carried from the crashed controller.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The powered-off device — inject faults here to model errors that
    /// strike while the system is down (e.g. resistance drift during a
    /// long outage, §2.7).
    pub fn device_mut(&mut self) -> &mut NvmDimm {
        &mut self.device
    }

    /// The configuration the crashed system ran.
    pub fn config(&self) -> &SecureMemoryConfig {
        &self.config
    }
}

/// What recovery accomplished.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// The rebuilt shadow-tree root matched the persisted one.
    pub shadow_root_intact: bool,
    /// Shadow entries examined.
    pub entries_seen: u64,
    /// Metadata blocks successfully reconstructed and re-persisted.
    pub blocks_restored: u64,
    /// Counters whose lost updates Osiris trials recovered (> 0 trials).
    pub counters_recovered: u64,
    /// Blocks recovered from a clone after the primary failed.
    pub clone_repairs: u64,
    /// Stale shadow entries skipped (their block was superseded by a
    /// later writeback and the memory copy verifies on its own — normal
    /// after cache-slot reuse).
    pub stale_entries: u64,
    /// Metadata blocks that could not be reconstructed, with the number
    /// of data lines each renders unverifiable.
    pub unverifiable: Vec<(MetaId, u64)>,
    /// NVM line reads issued during recovery.
    pub nvm_reads: u64,
    /// NVM line writes issued during recovery.
    pub nvm_writes: u64,
}

impl RecoveryReport {
    /// Total data lines rendered unverifiable.
    pub fn unverifiable_lines(&self) -> u64 {
        self.unverifiable.iter().map(|&(_, n)| n).sum()
    }

    /// `true` when every tracked block was restored.
    pub fn is_complete(&self) -> bool {
        self.unverifiable.is_empty()
    }

    /// Estimated recovery time with serialized PCM accesses (150 ns
    /// reads / 300 ns writes) — the metric the Anubis-vs-Osiris
    /// comparison of §2.6 is about.
    pub fn estimated_duration_ns(&self) -> u64 {
        self.nvm_reads * 150 + self.nvm_writes * 300
    }
}

fn restore_lsb16(current: u64, lsb: u16) -> u64 {
    let restored = (current & !0xffff) | lsb as u64;
    if restored < current {
        restored + 0x1_0000
    } else {
        restored
    }
}

struct Recoverer<'a> {
    layout: &'a MemoryLayout,
    config: &'a SecureMemoryConfig,
    device: &'a mut NvmDimm,
    mac: MacEngine,
    cipher: CounterModeCipher,
    root: &'a TocNode,
    report: RecoveryReport,
}

impl Recoverer<'_> {
    /// Reads a metadata block's candidate contents: the primary copy plus
    /// every clone whose ECC outcome is usable. Returns (bytes, was_clone).
    fn candidate_sources(&mut self, meta: MetaId) -> Vec<([u8; 64], bool)> {
        let mut out = Vec::new();
        let (bytes, outcome) = self.device.read_line(self.layout.meta_addr(meta));
        if outcome.is_usable() {
            out.push((bytes, false));
        }
        let extra = self
            .config
            .cloning()
            .extra_clones(meta.level, self.layout.levels());
        for c in 1..=extra {
            let (cb, co) = self.device.read_line(self.layout.clone_addr(meta, c));
            if co.is_usable() {
                out.push((cb, true));
            }
        }
        out
    }

    /// The parent counter currently protecting `meta` (parents were
    /// restored first — top-down order).
    fn parent_counter(&mut self, meta: MetaId) -> Option<u64> {
        match self.layout.parent_of(meta) {
            None => Some(self.root.counter(self.layout.child_slot(meta))),
            Some(p) => {
                let sources = self.candidate_sources(p);
                let (bytes, _) = sources.first()?;
                Some(TocNode::from_bytes(bytes).counter(self.layout.child_slot(meta)))
            }
        }
    }

    fn shadow_mac_of_node(&self, meta: MetaId, node: &TocNode) -> u64 {
        let mut payload = [0u8; 64];
        for (i, c) in node.counters().iter().enumerate() {
            payload[8 * i..8 * i + 8].copy_from_slice(&c.to_le_bytes());
        }
        self.mac
            .shadow_entry_mac(self.layout.meta_addr(meta).byte_addr(), &payload)
    }

    /// Attempts to reconstruct a ToC node from one byte source.
    fn reconstruct_node(&mut self, rec: &ShadowRecord, bytes: &[u8; 64]) -> Option<[u8; 64]> {
        let meta = rec.meta;
        let mem = TocNode::from_bytes(bytes);
        let mut restored = mem;
        for i in 0..8 {
            restored.set_counter(i, restore_lsb16(mem.counter(i), rec.lsbs[i]));
        }
        if self.shadow_mac_of_node(meta, &restored) != rec.mac {
            return None;
        }
        let parent_counter = self.parent_counter(meta)?;
        restored.set_mac(self.mac.tree_node_mac(
            self.layout.meta_addr(meta).byte_addr(),
            restored.counters(),
            parent_counter,
        ));
        Some(restored.to_bytes())
    }

    /// Attempts to reconstruct a leaf counter block via Osiris trials.
    fn reconstruct_leaf(&mut self, rec: &ShadowRecord, bytes: &[u8; 64]) -> Option<[u8; 64]> {
        self.reconstruct_leaf_inner(rec.meta, bytes, Some(rec))
    }

    /// Osiris trials without a shadow record (exhaustive-scan recovery).
    fn reconstruct_leaf_unchecked(&mut self, meta: MetaId, bytes: &[u8; 64]) -> Option<[u8; 64]> {
        self.reconstruct_leaf_inner(meta, bytes, None)
    }

    fn reconstruct_leaf_inner(
        &mut self,
        meta: MetaId,
        bytes: &[u8; 64],
        rec: Option<&ShadowRecord>,
    ) -> Option<[u8; 64]> {
        let mem = CounterBlock::from_bytes(bytes);
        let major = match rec {
            Some(r) => restore_lsb16(mem.major(), r.lsbs[0]),
            None => mem.major(), // no shadow: trust the stored major
        };
        let major_bumped = major != mem.major();
        let mut restored = mem;
        // Rebuild through serialization to set the major cleanly.
        let mut raw = restored.to_bytes();
        raw[..8].copy_from_slice(&major.to_le_bytes());
        restored = CounterBlock::from_bytes(&raw);
        let mut recovered_here = 0u64;
        for slot in 0..COUNTERS_PER_BLOCK as usize {
            let base_minor = if major_bumped { 0 } else { mem.minor(slot) };
            let daddr = DataAddr::new(meta.index * COUNTERS_PER_BLOCK + slot as u64);
            let (mac_line, off) = self.layout.data_mac_slot(daddr);
            let (mac_bytes, mo) = self.device.read_line(mac_line);
            if !mo.is_usable() {
                continue; // the data line is lost anyway (L_error)
            }
            let stored = soteria_rt::bytes::u64_le(&mac_bytes[off..off + 8]);
            if stored == 0 {
                set_minor(&mut restored, slot, base_minor);
                continue; // line never written
            }
            let (cipher_bytes, co) = self.device.read_line(self.layout.data_line_addr(daddr));
            if !co.is_usable() {
                continue;
            }
            let mut found = false;
            for t in 0..=self.config.osiris_limit() as u64 {
                let minor = base_minor as u64 + t;
                if minor >= MINOR_LIMIT as u64 {
                    break;
                }
                let counter = major * MINOR_LIMIT as u64 + minor;
                let tag = self
                    .mac
                    .data_mac(daddr.index() * 64, &cipher_bytes, counter)
                    .max(1);
                if tag == stored {
                    set_minor(&mut restored, slot, minor as u8);
                    if t > 0 {
                        recovered_here += 1;
                    }
                    found = true;
                    break;
                }
            }
            if !found {
                return None; // trials exhausted: wrong source or tampering
            }
        }
        let out = restored.to_bytes();
        if let Some(r) = rec {
            // Shadow-guided recovery confirms the reconstruction against
            // the entry MAC; the exhaustive scan relies on the per-line
            // trials alone (Osiris's original design).
            if self
                .mac
                .shadow_entry_mac(self.layout.meta_addr(meta).byte_addr(), &out)
                != r.mac
            {
                return None;
            }
        }
        self.report.counters_recovered += recovered_here;
        // Refresh the leaf MAC under the (unchanged) parent counter.
        let parent_counter = self.parent_counter(meta)?;
        let tag = self.mac.counter_block_mac(
            self.layout.meta_addr(meta).byte_addr(),
            &out,
            parent_counter,
        );
        let (line, off) = self.layout.leaf_mac_slot(meta.index);
        let (mut mac_bytes, mo) = self.device.read_line(line);
        if !mo.is_usable() {
            return None;
        }
        mac_bytes[off..off + 8].copy_from_slice(&tag.to_le_bytes());
        self.device.write_line(line, &mac_bytes);
        Some(out)
    }

    /// Does the memory copy of `meta` verify under its parent as-is? If
    /// so, a shadow entry that fails reconstruction is simply *stale*
    /// (written before the block's last writeback and its cache slot
    /// reused since) — the verification chain, not the shadow entry, is
    /// the authority.
    fn memory_copy_is_valid(&mut self, meta: MetaId) -> bool {
        let sources = self.candidate_sources(meta);
        let Some(parent_counter) = self.parent_counter(meta) else {
            return false;
        };
        let addr = self.layout.meta_addr(meta).byte_addr();
        for (bytes, _) in &sources {
            if meta.level >= 2 {
                let node = TocNode::from_bytes(bytes);
                let fresh = node.mac() == 0 && node.counters().iter().all(|&c| c == 0);
                if fresh
                    || self
                        .mac
                        .tree_node_mac(addr, node.counters(), parent_counter)
                        == node.mac()
                {
                    return true;
                }
            } else {
                let (line, off) = self.layout.leaf_mac_slot(meta.index);
                let (mac_bytes, mo) = self.device.read_line(line);
                if !mo.is_usable() {
                    continue;
                }
                let stored = soteria_rt::bytes::u64_le(&mac_bytes[off..off + 8]);
                if stored == 0 && bytes.iter().all(|&b| b == 0) {
                    return true;
                }
                if self.mac.counter_block_mac(addr, bytes, parent_counter) == stored {
                    return true;
                }
            }
        }
        false
    }

    fn process_record(&mut self, rec: &ShadowRecord) -> bool {
        let meta = rec.meta;
        // Guard against garbage decoded from corrupted entries.
        if meta.level == 0
            || meta.level > self.layout.levels()
            || meta.index >= self.layout.level_count(meta.level)
        {
            return false;
        }
        let sources = self.candidate_sources(meta);
        for (bytes, from_clone) in &sources {
            let restored = if meta.level == 1 {
                self.reconstruct_leaf(rec, bytes)
            } else {
                self.reconstruct_node(rec, bytes)
            };
            if let Some(out) = restored {
                // Purify: primary and every clone get the restored value.
                self.device.write_line(self.layout.meta_addr(meta), &out);
                let extra = self
                    .config
                    .cloning()
                    .extra_clones(meta.level, self.layout.levels());
                for c in 1..=extra {
                    self.device
                        .write_line(self.layout.clone_addr(meta, c), &out);
                }
                self.report.blocks_restored += 1;
                if *from_clone {
                    self.report.clone_repairs += 1;
                }
                return true;
            }
        }
        false
    }
}

fn set_minor(block: &mut CounterBlock, slot: usize, minor: u8) {
    // CounterBlock has no direct minor setter (its invariants are managed
    // by bump); recovery reconstructs through serialization instead.
    let mut probe = *block;
    let mut raw = probe.to_bytes();
    // Clear and re-set the 7-bit field.
    let bitpos = slot * 7;
    let byte = 8 + bitpos / 8;
    let shift = bitpos % 8;
    let mask: u16 = 0x7f << shift;
    let mut v = u16::from_le_bytes([raw[byte], *raw.get(byte + 1).unwrap_or(&0)]);
    v = (v & !mask) | ((minor as u16) << shift);
    raw[byte] = v as u8;
    if byte + 1 < 64 {
        raw[byte + 1] = (v >> 8) as u8;
    }
    probe = CounterBlock::from_bytes(&raw);
    *block = probe;
}

/// Recovers a crashed secure memory, returning a fresh controller and a
/// report of what was restored and what was lost.
///
/// # Panics
///
/// Panics if the crashed system ran in [`Fidelity::Timing`] (recovery is a
/// functional-mode feature).
pub fn recover(mut image: CrashImage) -> (SecureMemoryController, RecoveryReport) {
    assert_eq!(
        image.config.fidelity(),
        Fidelity::Functional,
        "recovery requires Functional fidelity"
    );
    let layout = image.config.build_layout();
    let mac = MacEngine::new(image.config.mac_key());
    let cipher = CounterModeCipher::new(image.config.encryption_key());
    let stats_before = image.device.stats();

    // Step 1: read the shadow region and check its integrity.
    let slots = layout.shadow_slots();
    let mut region = Vec::with_capacity(slots as usize);
    let mut any_shadow_ue = false;
    for slot in 0..slots {
        let (bytes, outcome) = image.device.read_line(layout.shadow_slot_addr(slot));
        if let CorrectionOutcome::Uncorrectable = outcome {
            any_shadow_ue = true;
        }
        region.push(bytes);
    }
    let mut rebuilt = ShadowTree::from_region(region.iter());
    let shadow_root_intact = !any_shadow_ue && rebuilt.root() == image.shadow_root;
    let mut obs = std::mem::take(&mut image.obs);
    obs.trace.emit_with("rec", "start", || {
        obs_fields![
            ("mode", "anubis"),
            ("shadow_root_intact", shadow_root_intact),
            ("shadow_slots", slots),
        ]
    });

    // Step 2: decode entries, order parents before children.
    let mut records: Vec<Vec<ShadowRecord>> = region
        .iter()
        .map(|bytes| decode_entry(bytes, image.config.shadow_mode()))
        .filter(|c| !c.is_empty())
        .collect();
    records.sort_by_key(|cands| std::cmp::Reverse(cands[0].meta.level));

    let root = image.root;
    let mut rec = Recoverer {
        layout: &layout,
        config: &image.config,
        device: &mut image.device,
        mac,
        cipher,
        root: &root,
        report: RecoveryReport {
            shadow_root_intact,
            ..RecoveryReport::default()
        },
    };
    let _ = &rec.cipher; // decryption not needed: MAC trials suffice

    for candidates in &records {
        rec.report.entries_seen += 1;
        let mut done = false;
        for candidate in candidates {
            if rec.process_record(candidate) {
                done = true;
                break;
            }
        }
        let meta = candidates[0].meta;
        if done {
            obs.trace.emit_with("rec", "restored", || {
                obs_fields![("level", meta.level), ("index", meta.index)]
            });
        } else {
            let in_bounds = meta.level >= 1
                && meta.level <= layout.levels()
                && meta.index < layout.level_count(meta.level);
            if in_bounds && rec.memory_copy_is_valid(meta) {
                // A superseded entry from a reused cache slot: the block's
                // current state is already durable and verifiable.
                rec.report.stale_entries += 1;
                obs.trace.emit_with("rec", "stale_entry", || {
                    obs_fields![("level", meta.level), ("index", meta.index)]
                });
                continue;
            }
            let covered = if in_bounds {
                layout.covered_data_lines(meta)
            } else {
                0
            };
            obs.trace.emit_with("rec", "unverifiable", || {
                obs_fields![
                    ("level", meta.level),
                    ("index", meta.index),
                    ("covered_lines", covered),
                ]
            });
            rec.report.unverifiable.push((meta, covered));
        }
    }
    let mut report = rec.report;
    let stats_after = image.device.stats();
    report.nvm_reads = stats_after.reads - stats_before.reads;
    report.nvm_writes = stats_after.writes - stats_before.writes;
    emit_rec_done(&mut obs, &report);

    // Step 3: hand back a live controller over the recovered device.
    let mut controller = SecureMemoryController::with_device(image.config, image.device);
    controller.root = root;
    *controller.obs_mut() = obs;
    // Adopt the (now authoritative) shadow region state.
    if let Some(tree) = &mut controller.shadow_tree {
        for (slot, bytes) in region.iter().enumerate() {
            tree.update(slot as u64, bytes);
        }
        controller.shadow_root = tree.root();
    }
    (controller, report)
}

/// Emits the recovery-summary event shared by both recovery paths.
fn emit_rec_done(obs: &mut Obs, report: &RecoveryReport) {
    let unverifiable_lines = report.unverifiable_lines();
    let (restored, recovered, clones, stale, reads, writes) = (
        report.blocks_restored,
        report.counters_recovered,
        report.clone_repairs,
        report.stale_entries,
        report.nvm_reads,
        report.nvm_writes,
    );
    obs.trace.emit_with("rec", "done", || {
        obs_fields![
            ("blocks_restored", restored),
            ("counters_recovered", recovered),
            ("clone_repairs", clones),
            ("stale_entries", stale),
            ("unverifiable_lines", unverifiable_lines),
            ("nvm_reads", reads),
            ("nvm_writes", writes),
        ]
    });
    obs.metrics.inc("rec.blocks_restored", restored);
    obs.metrics.inc("rec.unverifiable_lines", unverifiable_lines);
}

/// Recovers a crashed secure memory **without** the Anubis shadow table:
/// every counter block in the system goes through Osiris trials against
/// its data MACs, and every tree node is verified in place — the
/// Osiris-style whole-memory scan whose cost motivated Anubis (§2.6,
/// "needs to check every encryption and re-calculates all MAC values").
///
/// ToC intermediate nodes cannot be rebuilt without shadow LSBs: any
/// node whose lost in-cache updates mattered is reported unverifiable.
/// Use this for the recovery-time ablation, not as the product path.
///
/// # Panics
///
/// Panics if the crashed system ran in [`Fidelity::Timing`].
pub fn recover_exhaustive(mut image: CrashImage) -> (SecureMemoryController, RecoveryReport) {
    assert_eq!(
        image.config.fidelity(),
        Fidelity::Functional,
        "recovery requires Functional fidelity"
    );
    let layout = image.config.build_layout();
    let mac = MacEngine::new(image.config.mac_key());
    let cipher = CounterModeCipher::new(image.config.encryption_key());
    let stats_before = image.device.stats();
    let root = image.root;
    let mut obs = std::mem::take(&mut image.obs);
    obs.trace
        .emit_with("rec", "start", || obs_fields![("mode", "exhaustive")]);
    let mut rec = Recoverer {
        layout: &layout,
        config: &image.config,
        device: &mut image.device,
        mac,
        cipher,
        root: &root,
        report: RecoveryReport {
            shadow_root_intact: true,
            ..RecoveryReport::default()
        },
    };
    // Scan every leaf: reconstruct minors by Osiris trials (no shadow
    // record available, so no entry-MAC confirmation — the trials
    // themselves are the sanity check, exactly Osiris's design).
    for index in 0..layout.level_count(1) {
        let meta = MetaId::new(1, index);
        rec.report.entries_seen += 1;
        let sources = rec.candidate_sources(meta);
        let mut done = false;
        for (bytes, from_clone) in &sources {
            if let Some(out) = rec.reconstruct_leaf_unchecked(meta, bytes) {
                rec.device.write_line(layout.meta_addr(meta), &out);
                let extra = rec.config.cloning().extra_clones(1, layout.levels());
                for c in 1..=extra {
                    rec.device.write_line(layout.clone_addr(meta, c), &out);
                }
                rec.report.blocks_restored += 1;
                if *from_clone {
                    rec.report.clone_repairs += 1;
                }
                done = true;
                break;
            }
        }
        if !done {
            rec.report
                .unverifiable
                .push((meta, layout.covered_data_lines(meta)));
        }
    }
    // Verify every tree node in place (top-down so parent counters are
    // trusted); unverifiable nodes cannot be rebuilt without the shadow.
    for level in (2..=layout.levels()).rev() {
        for index in 0..layout.level_count(level) {
            let meta = MetaId::new(level, index);
            rec.report.entries_seen += 1;
            let sources = rec.candidate_sources(meta);
            let Some(parent_counter) = rec.parent_counter(meta) else {
                rec.report
                    .unverifiable
                    .push((meta, layout.covered_data_lines(meta)));
                continue;
            };
            let addr = rec.layout.meta_addr(meta).byte_addr();
            let mut verified = false;
            for (bytes, _) in &sources {
                let node = TocNode::from_bytes(bytes);
                let fresh = node.mac() == 0 && node.counters().iter().all(|&c| c == 0);
                if fresh
                    || rec.mac.tree_node_mac(addr, node.counters(), parent_counter) == node.mac()
                {
                    verified = true;
                    break;
                }
            }
            if !verified {
                rec.report
                    .unverifiable
                    .push((meta, layout.covered_data_lines(meta)));
            }
        }
    }
    let mut report = rec.report;
    let stats_after = image.device.stats();
    report.nvm_reads = stats_after.reads - stats_before.reads;
    report.nvm_writes = stats_after.writes - stats_before.writes;
    emit_rec_done(&mut obs, &report);
    let mut controller = SecureMemoryController::with_device(image.config, image.device);
    controller.root = root;
    *controller.obs_mut() = obs;
    (controller, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_restore_no_change() {
        assert_eq!(restore_lsb16(0x1234, 0x1234), 0x1234);
    }

    #[test]
    fn lsb_restore_forward() {
        assert_eq!(restore_lsb16(0x1_0010, 0x0015), 0x1_0015);
    }

    #[test]
    fn lsb_restore_wraps() {
        // Memory says 0x1_fffe, shadow says LSB 0x0003: the counter
        // advanced past a 16-bit boundary.
        assert_eq!(restore_lsb16(0x1_fffe, 0x0003), 0x2_0003);
    }

    #[test]
    fn set_minor_roundtrip() {
        let mut b = CounterBlock::new();
        for slot in 0..64 {
            set_minor(&mut b, slot, (slot % 128) as u8);
        }
        for slot in 0..64 {
            assert_eq!(b.minor(slot), (slot % 128) as u8, "slot {slot}");
        }
    }

    #[test]
    fn report_accounting() {
        let mut r = RecoveryReport::default();
        assert!(r.is_complete());
        r.unverifiable.push((MetaId::new(2, 0), 512));
        r.unverifiable.push((MetaId::new(1, 3), 64));
        assert_eq!(r.unverifiable_lines(), 576);
        assert!(!r.is_complete());
    }
}
