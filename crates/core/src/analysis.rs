//! Resilience analytics: the Fig. 3 expected-loss model and the UDR
//! (Unverifiable Data Ratio) assessment that Figs. 11–12 are built on.
//!
//! * [`ExpectedLossModel`] — the §2.7 analytic model: errors land
//!   uniformly over all stored lines; losing a line costs its *coverage*
//!   (1 line for data, 8 for a MAC line, `64·8^(ℓ-1)` for a level-ℓ tree
//!   block). Each tree level contributes the same expected loss as the
//!   whole data region, which is why a secure memory is ≈ `levels + 2`
//!   (~12×) less resilient than a non-secure one.
//!
//! * [`ResilienceModel::assess`] — takes the fault set of one Monte Carlo
//!   iteration (from `soteria-faultsim`), determines where Chipkill is
//!   defeated (two distinct faulty chips sharing a codeword), maps those
//!   uncorrectable regions onto the memory layout, and reports
//!   `L_error` (data lines directly lost) and `L_unverifiable` (data
//!   covered by metadata whose **every copy** — original and all Soteria
//!   clones — fell inside uncorrectable regions).

use soteria_nvm::fault::{FaultFootprint, FaultRecord};
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::LineAddr;

use crate::clone::CloningPolicy;
use crate::layout::{MemoryLayout, MetaId, Region, COUNTERS_PER_BLOCK, TREE_ARITY};

// ---------------------------------------------------------------------
// Fig. 3: expected loss vs number of uncorrectable errors
// ---------------------------------------------------------------------

/// Analytic expected-loss model for a given protected capacity.
#[derive(Clone, Debug)]
pub struct ExpectedLossModel {
    data_lines: u64,
    data_mac_lines: u64,
    leaf_mac_lines: u64,
    level_counts: Vec<u64>,
}

impl ExpectedLossModel {
    /// Builds the model for `capacity_bytes` of protected data.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a positive multiple of 4 KiB.
    pub fn new(capacity_bytes: u64) -> Self {
        let data_lines = capacity_bytes / 64;
        assert!(data_lines > 0 && data_lines.is_multiple_of(COUNTERS_PER_BLOCK));
        let mut level = data_lines / COUNTERS_PER_BLOCK;
        let mut level_counts = vec![level];
        while level > TREE_ARITY {
            level = level.div_ceil(TREE_ARITY);
            level_counts.push(level);
        }
        Self {
            data_lines,
            data_mac_lines: data_lines / 8,
            leaf_mac_lines: (data_lines / COUNTERS_PER_BLOCK).div_ceil(8),
            level_counts,
        }
    }

    /// Tree levels stored in memory (excluding the root).
    pub fn levels(&self) -> u8 {
        self.level_counts.len() as u8
    }

    fn total_lines(&self) -> u64 {
        self.data_lines
            + self.data_mac_lines
            + self.leaf_mac_lines
            + self.level_counts.iter().sum::<u64>()
    }

    /// Expected data bytes lost/unverifiable per uncorrectable error in a
    /// **secure** memory (error uniform over data + metadata lines).
    pub fn secure_loss_per_error_bytes(&self) -> f64 {
        // Sum of coverage over all lines, in data lines.
        let mut coverage = self.data_lines as f64; // data lines cover themselves
        coverage += self.data_mac_lines as f64 * 8.0; // 8 MACs per line
        coverage += self.leaf_mac_lines as f64 * 8.0 * COUNTERS_PER_BLOCK as f64;
        for (i, &count) in self.level_counts.iter().enumerate() {
            let per_block = (COUNTERS_PER_BLOCK * TREE_ARITY.pow(i as u32)) as f64;
            coverage += count as f64 * per_block.min(self.data_lines as f64);
        }
        coverage / self.total_lines() as f64 * 64.0
    }

    /// Expected data bytes lost per uncorrectable error in a non-secure
    /// memory: exactly one line.
    pub fn nonsecure_loss_per_error_bytes(&self) -> f64 {
        64.0
    }

    /// Expected loss for `errors` uncorrectable errors (secure memory).
    pub fn secure_loss_bytes(&self, errors: u64) -> f64 {
        errors as f64 * self.secure_loss_per_error_bytes()
    }

    /// Expected loss for `errors` uncorrectable errors (non-secure).
    pub fn nonsecure_loss_bytes(&self, errors: u64) -> f64 {
        errors as f64 * self.nonsecure_loss_per_error_bytes()
    }

    /// How many times less resilient the secure memory is (Fig. 3 reports
    /// ≈ 12× for 4 TB).
    pub fn amplification(&self) -> f64 {
        self.secure_loss_per_error_bytes() / self.nonsecure_loss_per_error_bytes()
    }
}

// ---------------------------------------------------------------------
// Figs. 11-12: UDR under a concrete fault set
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sel {
    All,
    One(u32),
}

impl Sel {
    fn intersect(self, other: Sel) -> Option<Sel> {
        match (self, other) {
            (Sel::All, x) | (x, Sel::All) => Some(x),
            (Sel::One(a), Sel::One(b)) if a == b => Some(Sel::One(a)),
            _ => None,
        }
    }

    fn contains(self, v: u32) -> bool {
        match self {
            Sel::All => true,
            Sel::One(x) => x == v,
        }
    }
}

/// A region of (bank, row, col, beat) coordinates where Chipkill is
/// defeated (≥ 2 distinct chips faulty in the same codeword).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct UeRegion {
    bank_mask: u32,
    row: Sel,
    col: Sel,
    beat: Sel,
}

fn footprint_shape(fp: &FaultFootprint) -> (u32, Sel, Sel, Sel) {
    match *fp {
        FaultFootprint::SingleBit {
            bank,
            row,
            col,
            beat,
            ..
        }
        | FaultFootprint::SingleWord {
            bank,
            row,
            col,
            beat,
        } => (
            1 << bank,
            Sel::One(row),
            Sel::One(col),
            Sel::One(beat as u32),
        ),
        FaultFootprint::SingleColumn { bank, col } => {
            (1 << bank, Sel::All, Sel::One(col), Sel::All)
        }
        FaultFootprint::SingleRow { bank, row } => (1 << bank, Sel::One(row), Sel::All, Sel::All),
        FaultFootprint::SingleBank { bank } => (1 << bank, Sel::All, Sel::All, Sel::All),
        FaultFootprint::MultiBank { bank_mask } => (bank_mask, Sel::All, Sel::All, Sel::All),
        FaultFootprint::WholeChip => (u32::MAX, Sel::All, Sel::All, Sel::All),
    }
}

fn intersect_shapes(a: (u32, Sel, Sel, Sel), b: (u32, Sel, Sel, Sel)) -> Option<UeRegion> {
    let banks = a.0 & b.0;
    if banks == 0 {
        return None;
    }
    Some(UeRegion {
        bank_mask: banks,
        row: a.1.intersect(b.1)?,
        col: a.2.intersect(b.2)?,
        beat: a.3.intersect(b.3)?,
    })
}

/// Result of assessing one fault set against the layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LossAssessment {
    /// Data lines directly uncorrectable (`L_error`).
    pub error_data_lines: u64,
    /// Data lines rendered unverifiable by lost metadata
    /// (`L_unverifiable`). Zero unless **all** copies of some metadata
    /// block were uncorrectable.
    pub unverifiable_data_lines: u64,
    /// Metadata blocks lost with all their clones.
    pub lost_meta_blocks: Vec<MetaId>,
}

impl LossAssessment {
    /// UDR: unverifiable data over total protected data.
    pub fn udr(&self, data_lines: u64) -> f64 {
        self.unverifiable_data_lines as f64 / data_lines as f64
    }

    /// Direct-error data ratio.
    pub fn error_ratio(&self, data_lines: u64) -> f64 {
        self.error_data_lines as f64 / data_lines as f64
    }
}

/// Which integrity-tree structure the memory runs (§2.5): ToC nodes are
/// unreconstructable, BMT intermediate nodes can be recomputed from their
/// children.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TreeKind {
    /// SGX-style Tree of Counters (the paper's choice).
    #[default]
    Toc,
    /// Bonsai-Merkle-Tree-style hash tree: losing an intermediate node is
    /// repairable by rehashing the children, so only counter-block (leaf)
    /// losses render data unverifiable.
    Bmt,
}

/// Maps fault sets to data loss for a given layout.
///
/// One model serves any number of cloning policies: [`Self::assess_many`]
/// computes the uncorrectable regions and `L_error` once and evaluates
/// all policies against the same fault set (the paired comparison the
/// Monte Carlo campaign relies on).
#[derive(Clone, Debug)]
pub struct ResilienceModel<'a> {
    layout: &'a MemoryLayout,
    geometry: &'a DimmGeometry,
    correctable_chips: usize,
    tree: TreeKind,
}

impl<'a> ResilienceModel<'a> {
    /// Creates the model with Chipkill-Correct (1 correctable chip) and a
    /// ToC tree — the paper's configuration.
    pub fn new(layout: &'a MemoryLayout, geometry: &'a DimmGeometry) -> Self {
        Self {
            layout,
            geometry,
            correctable_chips: 1,
            tree: TreeKind::Toc,
        }
    }

    /// Sets the number of simultaneously-faulty chips the DIMM's ECC
    /// corrects per codeword (0 = SEC-DED-class, 1 = Chipkill,
    /// 2 = double-Chipkill) — the §3.1/§6.2 ECC-strength ablation.
    pub fn with_correctable_chips(mut self, chips: usize) -> Self {
        self.correctable_chips = chips;
        self
    }

    /// Sets the integrity-tree structure (§2.5 ablation).
    pub fn with_tree(mut self, tree: TreeKind) -> Self {
        self.tree = tree;
        self
    }

    /// Recursively intersects `need` more fault footprints (on chips
    /// disjoint from `used`) into `shape`, collecting completed regions.
    fn extend_overlaps(
        &self,
        faults: &[FaultRecord],
        start: usize,
        shape: (u32, Sel, Sel, Sel),
        used_chips: &[u32],
        distinct: usize,
        regions: &mut Vec<UeRegion>,
    ) {
        if distinct > self.correctable_chips {
            let r = UeRegion {
                bank_mask: shape.0,
                row: shape.1,
                col: shape.2,
                beat: shape.3,
            };
            if !regions.contains(&r) {
                regions.push(r);
            }
            return;
        }
        for (i, f) in faults.iter().enumerate().skip(start) {
            let new_chips: Vec<u32> = f
                .chips
                .iter()
                .copied()
                .filter(|c| !used_chips.contains(c))
                .collect();
            if new_chips.is_empty() {
                continue;
            }
            if let Some(r) = intersect_shapes(shape, footprint_shape(&f.footprint)) {
                let mut used = used_chips.to_vec();
                used.extend_from_slice(&new_chips);
                self.extend_overlaps(
                    faults,
                    i + 1,
                    (r.bank_mask, r.row, r.col, r.beat),
                    &used,
                    distinct + new_chips.len(),
                    regions,
                );
            }
        }
    }

    fn ue_regions(&self, faults: &[FaultRecord]) -> Vec<UeRegion> {
        let mut regions = Vec::new();
        // Single faults spanning more chips than the ECC corrects defeat
        // it on their own footprint.
        for f in faults {
            if f.chips.len() > self.correctable_chips {
                let s = footprint_shape(&f.footprint);
                let r = UeRegion {
                    bank_mask: s.0,
                    row: s.1,
                    col: s.2,
                    beat: s.3,
                };
                if !regions.contains(&r) {
                    regions.push(r);
                }
            }
        }
        // Combinations of faults on distinct chips whose footprints all
        // overlap: more bad symbols in one codeword than the ECC corrects.
        for (i, f) in faults.iter().enumerate() {
            let shape = footprint_shape(&f.footprint);
            self.extend_overlaps(faults, i + 1, shape, &f.chips, f.chips.len(), &mut regions);
        }
        regions
    }

    fn region_contains_line(&self, region: &UeRegion, line: u64) -> bool {
        let loc = self.geometry.locate(LineAddr::new(line));
        region.bank_mask & (1 << loc.bank) != 0
            && region.row.contains(loc.row)
            && region.col.contains(loc.col)
    }

    fn any_region_contains(&self, regions: &[UeRegion], line: u64) -> bool {
        regions.iter().any(|r| self.region_contains_line(r, line))
    }

    /// A region that blankets the whole device.
    fn is_total(&self, region: &UeRegion) -> bool {
        region.row == Sel::All
            && region.col == Sel::All
            && (0..self.geometry.banks()).all(|b| region.bank_mask & (1 << b) != 0)
    }

    /// Closed-form count of the lines of `[start, end)` inside `region`.
    fn count_lines_in(&self, region: &UeRegion, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let cols = self.geometry.cols_per_row() as i128;
        let banks = self.geometry.banks() as u64;
        let rows = self.geometry.rows() as i128;
        let rb = cols * banks as i128; // lines per full row group
        let (s, e) = (start as i128, end as i128);
        let mut total: u64 = 0;
        for bank in 0..banks {
            if region.bank_mask & (1 << bank) == 0 {
                continue;
            }
            let off = bank as i128 * cols;
            match (region.row, region.col) {
                (Sel::One(row), Sel::One(c)) => {
                    let line = row as i128 * rb + off + c as i128;
                    if line >= s && line < e {
                        total += 1;
                    }
                }
                (Sel::One(row), Sel::All) => {
                    let rs = row as i128 * rb + off;
                    let overlap = (rs + cols).min(e) - rs.max(s);
                    if overlap > 0 {
                        total += overlap as u64;
                    }
                }
                (Sel::All, Sel::One(c)) => {
                    // Arithmetic progression row*rb + off + c, step rb.
                    let o = off + c as i128;
                    let lo = (s - o).div_euclid(rb) + i128::from((s - o).rem_euclid(rb) != 0);
                    let hi = (e - 1 - o).div_euclid(rb);
                    let lo = lo.max(0);
                    let hi = hi.min(rows - 1);
                    if hi >= lo {
                        total += (hi - lo + 1) as u64;
                    }
                }
                (Sel::All, Sel::All) => {
                    // Runs of `cols` lines at row*rb + off for each row.
                    let r_lo = ((s - off - cols + 1).div_euclid(rb)).max(0);
                    let r_hi = ((e - 1 - off).div_euclid(rb)).min(rows - 1);
                    for row in r_lo..=r_hi {
                        let rs = row * rb + off;
                        let overlap = (rs + cols).min(e) - rs.max(s);
                        if overlap > 0 {
                            total += overlap as u64;
                        }
                        // Middle rows all contribute `cols`; collapse them.
                        if rs >= s && rs + cols <= e {
                            let last_full = ((e - cols - off).div_euclid(rb)).min(rows - 1);
                            if last_full > row {
                                total += ((last_full - row) as u64) * cols as u64;
                            }
                            // Tail partial row, if any.
                            let tail = last_full + 1;
                            if tail <= r_hi {
                                let ts = tail * rb + off;
                                let overlap = (ts + cols).min(e) - ts.max(s);
                                if overlap > 0 {
                                    total += overlap as u64;
                                }
                            }
                            break;
                        }
                    }
                }
            }
        }
        total
    }

    /// Calls `f` for every line of `[start, end)` inside `region`.
    fn for_each_line_in(&self, region: &UeRegion, start: u64, end: u64, f: &mut impl FnMut(u64)) {
        let cols = self.geometry.cols_per_row() as u64;
        let banks = self.geometry.banks() as u64;
        let lines_per_row_group = cols * banks;
        let row_first = start / lines_per_row_group;
        let row_last = (end.saturating_sub(1)) / lines_per_row_group;
        for row in row_first..=row_last {
            if !region.row.contains(row as u32) {
                continue;
            }
            for bank in 0..banks {
                if region.bank_mask & (1 << bank) == 0 {
                    continue;
                }
                let run_start = row * lines_per_row_group + bank * cols;
                match region.col {
                    Sel::One(c) => {
                        let line = run_start + c as u64;
                        if line >= start && line < end {
                            f(line);
                        }
                    }
                    Sel::All => {
                        let s = run_start.max(start);
                        let e = (run_start + cols).min(end);
                        for line in s..e {
                            f(line);
                        }
                    }
                }
            }
        }
    }

    fn is_bankwide(region: &UeRegion) -> bool {
        region.row == Sel::All && region.col == Sel::All
    }

    /// Counts lines `x` in `[start, end)` with `bank(x) == bank` and
    /// `col(x) ∈ [col_lo, col_hi)` — closed form over the 16384-line row
    /// period of the global address map.
    fn count_bank_col(&self, start: u64, end: u64, bank: u64, col_lo: u64, col_hi: u64) -> u64 {
        let cols = self.geometry.cols_per_row() as u64;
        let banks = self.geometry.banks() as u64;
        let period = cols * banks;
        let width = col_hi - col_lo;
        let offset = bank * cols + col_lo; // interval start within a period
        let prefix = |n: u64| -> u64 {
            let full = n / period * width;
            let rem = n % period;
            full + rem.saturating_sub(offset).min(width)
        };
        prefix(end) - prefix(start)
    }

    /// Fast evaluation when every UE region is bank-wide (rank/bank-scale
    /// faults — the regime the rare-event estimator conditions on):
    /// block lostness depends only on (level, bank, carry segment of the
    /// column), so per-level lost fractions come out in closed form. The
    /// per-line coverage union across levels is combined as
    /// `1 - Π(1 - f_l)` (levels map a given data line to effectively
    /// independent banks under the interleaved address map).
    fn assess_bankwide(
        &self,
        regions: &[UeRegion],
        policies: &[&CloningPolicy],
        error_lines: u64,
    ) -> Vec<LossAssessment> {
        let banks = self.geometry.banks() as u64;
        let cols = self.geometry.cols_per_row() as u64;
        let mask_union: u32 = regions.iter().fold(0, |m, r| m | r.bank_mask);
        policies
            .iter()
            .map(|policy| {
                let mut keep = 1.0f64;
                for level in 1..=self.layout.levels() {
                    let extra = policy.extra_clones(level, self.layout.levels());
                    let base = self.layout.meta_addr(MetaId::new(level, 0)).index();
                    let count = self.layout.level_count(level);
                    // Column-carry boundaries: clone skew 67·(c+1) spills
                    // into the next bank when col ≥ cols − 67·(c+1).
                    let mut bounds: Vec<u64> = vec![0, cols];
                    for c in 1..=extra as u64 {
                        let b = cols.saturating_sub(67 * c);
                        if b > 0 && b < cols {
                            bounds.push(b);
                        }
                    }
                    bounds.sort_unstable();
                    bounds.dedup();
                    let mut lost = 0u64;
                    for bank in 0..banks {
                        if mask_union & (1 << bank) == 0 {
                            continue;
                        }
                        for seg in bounds.windows(2) {
                            let (lo, hi) = (seg[0], seg[1]);
                            let all_clones_dead = (1..=extra as u64).all(|c| {
                                let carry = u64::from(lo >= cols - 67 * c);
                                let clone_bank = (bank + c + carry) % banks;
                                mask_union & (1 << clone_bank) != 0
                            });
                            if all_clones_dead {
                                lost += self.count_bank_col(base, base + count, bank, lo, hi);
                            }
                        }
                    }
                    keep *= 1.0 - lost as f64 / count as f64;
                }
                let unverifiable = ((1.0 - keep) * self.layout.data_lines() as f64).round() as u64;
                LossAssessment {
                    error_data_lines: error_lines,
                    unverifiable_data_lines: unverifiable,
                    lost_meta_blocks: Vec::new(),
                }
            })
            .collect()
    }

    /// Assesses one fault set under one policy.
    pub fn assess(&self, faults: &[FaultRecord], policy: &CloningPolicy) -> LossAssessment {
        // One policy in, one assessment out; the fallback is unreachable.
        self.assess_many(faults, &[policy]).pop().unwrap_or_default()
    }

    /// `L_error`: lines of the data region inside any UE region. Regions
    /// from distinct fault pairs virtually never overlap; the per-region
    /// closed-form counts are summed and capped (a (rare) overlap makes
    /// this a tight upper bound).
    fn error_lines_in(&self, regions: &[UeRegion], data_lines: u64) -> u64 {
        if regions.len() == 1 {
            return self.count_lines_in(&regions[0], 0, data_lines);
        }
        let approx: u64 = regions
            .iter()
            .map(|r| self.count_lines_in(r, 0, data_lines))
            .sum();
        if approx <= 1 << 17 {
            // Small enough to count the union exactly (sort + dedup
            // keeps this hot path deterministic and allocation-light).
            let mut counted: Vec<u64> = Vec::with_capacity(approx as usize);
            for r in regions {
                self.for_each_line_in(r, 0, data_lines, &mut |line| {
                    counted.push(line);
                });
            }
            counted.sort_unstable();
            counted.dedup();
            counted.len() as u64
        } else {
            approx.min(data_lines)
        }
    }

    /// Assesses one fault set under several policies at once; the UE
    /// regions and `L_error` are computed a single time.
    pub fn assess_many(
        &self,
        faults: &[FaultRecord],
        policies: &[&CloningPolicy],
    ) -> Vec<LossAssessment> {
        let regions = self.ue_regions(faults);
        if regions.is_empty() {
            return vec![LossAssessment::default(); policies.len()];
        }
        let data_lines = self.layout.data_lines();

        // Whole-device UE (e.g. a rank-pair failure): everything is lost
        // under every policy, clones included.
        if regions.iter().any(|r| self.is_total(r)) {
            let top = self.layout.levels();
            let lost: Vec<MetaId> = (0..self.layout.level_count(top))
                .map(|i| MetaId::new(top, i))
                .collect();
            return vec![
                LossAssessment {
                    error_data_lines: data_lines,
                    unverifiable_data_lines: data_lines,
                    lost_meta_blocks: lost,
                };
                policies.len()
            ];
        }

        let error_lines = self.error_lines_in(&regions, data_lines);

        // Bank-scale-only fault sets take the closed-form path (the slow
        // scan below enumerates millions of metadata lines for them).
        if regions.iter().all(Self::is_bankwide) {
            return self.assess_bankwide(&regions, policies, error_lines);
        }

        // Metadata loss per policy: a block is lost only if its primary
        // AND all its clones fall inside UE regions.
        let meta_start = self.layout.meta_addr(MetaId::new(1, 0)).index();
        let top = self.layout.levels();
        let meta_end = self
            .layout
            .meta_addr(MetaId::new(top, self.layout.level_count(top) - 1))
            .index()
            + 1;
        // Collected as plain vectors (a meta can repeat only when regions
        // overlap, which is rare); sort + dedup below canonicalizes.
        let mut lost: Vec<Vec<MetaId>> = vec![Vec::new(); policies.len()];
        for r in &regions {
            self.for_each_line_in(r, meta_start, meta_end, &mut |line| {
                let Region::Meta(meta) = self.layout.classify(LineAddr::new(line)) else {
                    return;
                };
                // BMT intermediate nodes are recomputable from children
                // (§2.5): their loss costs a rebuild, not data.
                if self.tree == TreeKind::Bmt && meta.level >= 2 {
                    return;
                }
                for (p, policy) in policies.iter().enumerate() {
                    let extra = policy.extra_clones(meta.level, self.layout.levels());
                    let all_clones_dead = (1..=extra).all(|c| {
                        let ca = self.layout.clone_addr(meta, c).index();
                        self.any_region_contains(&regions, ca)
                    });
                    if all_clones_dead {
                        lost[p].push(meta);
                    }
                }
            });
        }

        lost.into_iter()
            .map(|mut set| {
                set.sort_unstable();
                set.dedup();
                // Union of covered data ranges (a lost L2 node covers its
                // lost leaves' ranges too).
                let mut ranges: Vec<(u64, u64)> = set
                    .iter()
                    .map(|&m| {
                        let (start, count) = self.layout.covered_data_range(m);
                        (start.index(), start.index() + count)
                    })
                    .collect();
                ranges.sort_unstable();
                let mut unverifiable = 0u64;
                let mut cursor = 0u64;
                for (s, e) in ranges {
                    let s = s.max(cursor);
                    if e > s {
                        unverifiable += e - s;
                        cursor = e;
                    }
                }
                LossAssessment {
                    error_data_lines: error_lines,
                    unverifiable_data_lines: unverifiable,
                    lost_meta_blocks: set,
                }
            })
            .collect()
    }

    /// Assesses one fault set under several full protection schemes at
    /// once (the cross-scheme compare matrix): like [`Self::assess_many`]
    /// but each scheme pairs its cloning policy with a [`LossProfile`]
    /// describing what its recovery path can reconstruct. The profile
    /// subsumes [`TreeKind`] (a BMT-style profile sets `rebuild_floor`
    /// to 2), so the model's own tree setting is ignored here.
    ///
    /// This always takes the exact per-block scan — the bankwide
    /// closed-form shortcut of `assess_many` cannot express per-leaf
    /// trial rescue — so it is meant for the compare campaign's small
    /// capacities, not multi-terabyte sweeps.
    pub fn assess_schemes(
        &self,
        faults: &[FaultRecord],
        schemes: &[SchemeLoss<'_>],
    ) -> Vec<LossAssessment> {
        let regions = self.ue_regions(faults);
        if regions.is_empty() {
            return vec![LossAssessment::default(); schemes.len()];
        }
        let data_lines = self.layout.data_lines();

        // Whole-device UE: everything is lost under every scheme —
        // trials need intact data lines and rebuilds need intact leaves.
        if regions.iter().any(|r| self.is_total(r)) {
            let top = self.layout.levels();
            let lost: Vec<MetaId> = (0..self.layout.level_count(top))
                .map(|i| MetaId::new(top, i))
                .collect();
            return vec![
                LossAssessment {
                    error_data_lines: data_lines,
                    unverifiable_data_lines: data_lines,
                    lost_meta_blocks: lost,
                };
                schemes.len()
            ];
        }

        let error_lines = self.error_lines_in(&regions, data_lines);

        let meta_start = self.layout.meta_addr(MetaId::new(1, 0)).index();
        let top = self.layout.levels();
        let meta_end = self
            .layout
            .meta_addr(MetaId::new(top, self.layout.level_count(top) - 1))
            .index()
            + 1;
        let mut lost: Vec<Vec<MetaId>> = vec![Vec::new(); schemes.len()];
        for r in &regions {
            self.for_each_line_in(r, meta_start, meta_end, &mut |line| {
                let Region::Meta(meta) = self.layout.classify(LineAddr::new(line)) else {
                    return;
                };
                for (s, scheme) in schemes.iter().enumerate() {
                    // Intermediate nodes at or above the rebuild floor are
                    // recomputable from their children at recovery (BMT
                    // rehash / Phoenix counter refold): a rebuild, not
                    // data loss.
                    if meta.level >= 2 && meta.level >= scheme.profile.rebuild_floor {
                        continue;
                    }
                    let extra = scheme
                        .cloning
                        .extra_clones(meta.level, self.layout.levels());
                    let all_clones_dead = (1..=extra).all(|c| {
                        let ca = self.layout.clone_addr(meta, c).index();
                        self.any_region_contains(&regions, ca)
                    });
                    if !all_clones_dead {
                        continue;
                    }
                    // A destroyed leaf counter block is re-derivable by
                    // bounded forward MAC trials only when every covered
                    // data line (and its MAC) survived to trial against.
                    if meta.level == 1 && scheme.profile.leaf == LeafRecovery::Trials {
                        let (start, count) = self.layout.covered_data_range(meta);
                        let (s0, e0) = (start.index(), start.index() + count);
                        let covered_hit = regions
                            .iter()
                            .any(|r| self.count_lines_in(r, s0, e0) > 0);
                        if !covered_hit {
                            continue;
                        }
                    }
                    lost[s].push(meta);
                }
            });
        }

        lost.into_iter()
            .map(|mut set| {
                set.sort_unstable();
                set.dedup();
                let mut ranges: Vec<(u64, u64)> = set
                    .iter()
                    .map(|&m| {
                        let (start, count) = self.layout.covered_data_range(m);
                        (start.index(), start.index() + count)
                    })
                    .collect();
                ranges.sort_unstable();
                let mut unverifiable = 0u64;
                let mut cursor = 0u64;
                for (s, e) in ranges {
                    let s = s.max(cursor);
                    if e > s {
                        unverifiable += e - s;
                        cursor = e;
                    }
                }
                LossAssessment {
                    error_data_lines: error_lines,
                    unverifiable_data_lines: unverifiable,
                    lost_meta_blocks: set,
                }
            })
            .collect()
    }
}

/// How a scheme's recovery path handles a leaf counter block destroyed
/// with all its clones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LeafRecovery {
    /// The covered data becomes unverifiable (ToC + Anubis: nothing can
    /// re-derive the counters).
    #[default]
    Fatal,
    /// Bounded forward MAC trials re-derive the counters from the data
    /// MACs (Osiris-style), provided every covered data line survived.
    Trials,
}

/// What a protection scheme's recovery machinery can reconstruct — the
/// loss-accounting half of a `ProtectionPolicy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossProfile {
    /// Lowest tree level (≥ 2) rebuildable from its children at
    /// recovery; `u8::MAX` means never (plain ToC).
    pub rebuild_floor: u8,
    /// Leaf counter-block recovery mode.
    pub leaf: LeafRecovery,
}

impl Default for LossProfile {
    fn default() -> Self {
        Self {
            rebuild_floor: u8::MAX,
            leaf: LeafRecovery::Fatal,
        }
    }
}

/// One scheme's inputs to [`ResilienceModel::assess_schemes`].
#[derive(Clone, Copy, Debug)]
pub struct SchemeLoss<'a> {
    /// The metadata cloning policy (Baseline / SRC / SAC).
    pub cloning: &'a CloningPolicy,
    /// What recovery reconstructs.
    pub profile: LossProfile,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::geometry_for;
    use soteria_nvm::fault::FaultKind;

    #[test]
    fn four_tb_amplification_is_about_12x() {
        let m = ExpectedLossModel::new(4u64 << 40);
        let amp = m.amplification();
        assert!((11.0..13.0).contains(&amp), "amplification {amp}");
    }

    #[test]
    fn amplification_grows_with_capacity() {
        let small = ExpectedLossModel::new(1 << 30).amplification();
        let large = ExpectedLossModel::new(1 << 42).amplification();
        assert!(
            large > small,
            "more levels, more exposure: {small} vs {large}"
        );
    }

    #[test]
    fn expected_loss_is_linear_in_errors() {
        let m = ExpectedLossModel::new(1 << 32);
        assert!((m.secure_loss_bytes(10) - 10.0 * m.secure_loss_bytes(1)).abs() < 1e-6);
        assert_eq!(m.nonsecure_loss_bytes(10), 640.0);
    }

    fn setup() -> (MemoryLayout, DimmGeometry) {
        let layout = MemoryLayout::new((64u64 << 20) / 64, 128, 4); // 64 MiB
        let geometry = geometry_for(layout.total_lines());
        (layout, geometry)
    }

    #[test]
    fn no_faults_no_loss() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        assert_eq!(model.assess(&[], &policy), LossAssessment::default());
    }

    #[test]
    fn single_chip_fault_is_harmless() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        let f = FaultRecord::on_chip(
            &geometry,
            3,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        );
        let a = model.assess(&[f], &policy);
        assert_eq!(a.error_data_lines, 0);
        assert_eq!(a.unverifiable_data_lines, 0);
    }

    #[test]
    fn two_chip_row_overlap_loses_that_row() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        // Both faults in bank 0, row 0 — overlapping rows on two chips.
        let f1 = FaultRecord::on_chip(
            &geometry,
            1,
            FaultFootprint::SingleRow { bank: 0, row: 0 },
            FaultKind::Permanent,
        );
        let f2 = FaultRecord::on_chip(
            &geometry,
            7,
            FaultFootprint::SingleRow { bank: 0, row: 0 },
            FaultKind::Permanent,
        );
        let a = model.assess(&[f1, f2], &policy);
        // Row 0 of bank 0 = the first 1024 lines, all data.
        assert_eq!(a.error_data_lines, 1024);
    }

    #[test]
    fn same_chip_twice_is_still_correctable() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        let f1 = FaultRecord::on_chip(
            &geometry,
            1,
            FaultFootprint::SingleRow { bank: 0, row: 0 },
            FaultKind::Permanent,
        );
        let f2 = FaultRecord::on_chip(
            &geometry,
            1,
            FaultFootprint::SingleBank { bank: 0 },
            FaultKind::Permanent,
        );
        let a = model.assess(&[f1, f2], &policy);
        assert_eq!(a.error_data_lines, 0);
    }

    #[test]
    fn word_faults_in_different_beats_do_not_collide() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        let mk = |chip, beat| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleWord {
                    bank: 0,
                    row: 0,
                    col: 0,
                    beat,
                },
                FaultKind::Permanent,
            )
        };
        assert_eq!(
            model
                .assess(&[mk(1, 0), mk(2, 1)], &policy)
                .error_data_lines,
            0
        );
        assert_eq!(
            model
                .assess(&[mk(1, 0), mk(2, 0)], &policy)
                .error_data_lines,
            1
        );
    }

    #[test]
    fn metadata_loss_without_clones() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        // Hit exactly the primary line of the top-level node 0 with a
        // two-chip word fault.
        let meta = MetaId::new(layout.levels(), 0);
        let loc = geometry.locate(layout.meta_addr(meta));
        let mk = |chip| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleWord {
                    bank: loc.bank,
                    row: loc.row,
                    col: loc.col,
                    beat: 0,
                },
                FaultKind::Permanent,
            )
        };
        let a = model.assess(&[mk(0), mk(9)], &policy);
        assert_eq!(a.lost_meta_blocks, vec![meta]);
        assert_eq!(a.unverifiable_data_lines, layout.covered_data_lines(meta));
    }

    #[test]
    fn clones_rescue_metadata() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::Relaxed;
        let model = ResilienceModel::new(&layout, &geometry);
        let meta = MetaId::new(layout.levels(), 0);
        let loc = geometry.locate(layout.meta_addr(meta));
        let mk = |chip| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleWord {
                    bank: loc.bank,
                    row: loc.row,
                    col: loc.col,
                    beat: 0,
                },
                FaultKind::Permanent,
            )
        };
        let a = model.assess(&[mk(0), mk(9)], &policy);
        assert!(a.lost_meta_blocks.is_empty(), "SRC clone must survive");
        assert_eq!(a.unverifiable_data_lines, 0);
    }

    #[test]
    fn rank_pair_fault_loses_everything_even_with_clones() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::Aggressive;
        let model = ResilienceModel::new(&layout, &geometry);
        let f = FaultRecord::on_rank(
            &geometry,
            0,
            FaultFootprint::WholeChip,
            FaultKind::Permanent,
        );
        let a = model.assess(&[f], &policy);
        assert_eq!(a.error_data_lines, layout.data_lines());
        assert_eq!(a.unverifiable_data_lines, layout.data_lines());
    }

    #[test]
    fn secded_class_fails_on_single_chip() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry).with_correctable_chips(0);
        let f = FaultRecord::on_chip(
            &geometry,
            3,
            FaultFootprint::SingleRow { bank: 0, row: 0 },
            FaultKind::Permanent,
        );
        let a = model.assess(&[f], &policy);
        assert_eq!(
            a.error_data_lines, 1024,
            "one faulty chip already defeats SEC-DED"
        );
    }

    #[test]
    fn double_chipkill_survives_two_chips() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry).with_correctable_chips(2);
        let mk = |chip| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleRow { bank: 0, row: 0 },
                FaultKind::Permanent,
            )
        };
        assert_eq!(model.assess(&[mk(1), mk(7)], &policy).error_data_lines, 0);
        // But three distinct chips defeat it.
        let a = model.assess(&[mk(1), mk(7), mk(12)], &policy);
        assert_eq!(a.error_data_lines, 1024);
    }

    #[test]
    fn bmt_ignores_intermediate_node_loss() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let toc = ResilienceModel::new(&layout, &geometry);
        let bmt = ResilienceModel::new(&layout, &geometry).with_tree(TreeKind::Bmt);
        let meta = MetaId::new(layout.levels(), 0); // an upper node
        let loc = geometry.locate(layout.meta_addr(meta));
        let mk = |chip| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleWord {
                    bank: loc.bank,
                    row: loc.row,
                    col: loc.col,
                    beat: 0,
                },
                FaultKind::Permanent,
            )
        };
        let faults = [mk(0), mk(9)];
        assert!(toc.assess(&faults, &policy).unverifiable_data_lines > 0);
        assert_eq!(bmt.assess(&faults, &policy).unverifiable_data_lines, 0);
    }

    #[test]
    fn bmt_still_loses_counter_blocks() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let bmt = ResilienceModel::new(&layout, &geometry).with_tree(TreeKind::Bmt);
        let leaf = MetaId::new(1, 0);
        let loc = geometry.locate(layout.meta_addr(leaf));
        let mk = |chip| {
            FaultRecord::on_chip(
                &geometry,
                chip,
                FaultFootprint::SingleWord {
                    bank: loc.bank,
                    row: loc.row,
                    col: loc.col,
                    beat: 0,
                },
                FaultKind::Permanent,
            )
        };
        let a = bmt.assess(&[mk(0), mk(9)], &policy);
        assert_eq!(a.unverifiable_data_lines, layout.covered_data_lines(leaf));
    }

    #[test]
    fn nested_coverage_not_double_counted() {
        let (layout, geometry) = setup();
        let policy = CloningPolicy::None;
        let model = ResilienceModel::new(&layout, &geometry);
        // Lose a leaf AND its ancestor: unverifiable lines must equal the
        // ancestor's coverage alone.
        let top = MetaId::new(layout.levels(), 0);
        let leaf = MetaId::new(1, 0);
        let mut faults = Vec::new();
        for meta in [top, leaf] {
            let loc = geometry.locate(layout.meta_addr(meta));
            for chip in [0u32, 9] {
                faults.push(FaultRecord::on_chip(
                    &geometry,
                    chip,
                    FaultFootprint::SingleWord {
                        bank: loc.bank,
                        row: loc.row,
                        col: loc.col,
                        beat: 0,
                    },
                    FaultKind::Permanent,
                ));
            }
        }
        let a = model.assess(&faults, &policy);
        assert_eq!(a.lost_meta_blocks.len(), 2);
        assert_eq!(a.unverifiable_data_lines, layout.covered_data_lines(top));
    }
}
