//! Controller configuration (Tables 1–3 distilled into a builder).

use soteria_crypto::{EncryptionKey, MacKey};

use crate::clone::CloningPolicy;
use crate::error::ConfigError;
use crate::layout::{MemoryLayout, COUNTERS_PER_BLOCK};
use crate::shadow::ShadowMode;

/// How faithfully the controller models content.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fidelity {
    /// Real AES/MAC over real stored codewords: functional + security
    /// semantics (used by tests and the recovery path).
    #[default]
    Functional,
    /// Content-free: all accesses, cache behaviour, evictions, clones and
    /// write counts are modeled, but no cryptography is computed and the
    /// device stores no payloads. Used by the performance simulator.
    Timing,
}

/// When tree updates propagate to NVM (§2.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TreeUpdate {
    /// Update parents only when a dirty block is evicted (the paper's
    /// choice, Table 1) — needs Anubis shadow tracking for recovery.
    #[default]
    Lazy,
    /// Propagate every counter update to the root immediately. The root
    /// is always fresh (trivial recovery, no shadow writes) at the cost
    /// of one writeback per tree level per store — the "extreme
    /// slowdown" §2.5 warns about. Implemented for the ablation study.
    Eager,
    /// Triad-NVM [Awad et al., reference 5]: persist the tree strictly up
    /// to `persist_levels` (1 = counters only), stay lazy above. Trades
    /// write amplification against the amount of state recovery must
    /// reconstruct.
    Triad {
        /// Levels (from the leaves) written through on every update.
        persist_levels: u8,
    },
    /// Phoenix [Alwadi et al., arXiv 1911.01922]: a persistent,
    /// NVM-friendly ToC. Leaf counter blocks are written through on every
    /// commit and the upper tree is reconstructed from them at recovery,
    /// so *no* Anubis shadow table is kept at all — recovery runs the
    /// exhaustive Osiris-style scan over always-fresh counters.
    Phoenix,
    /// Coalesced lazy updates ["Streamlining Integrity Tree Updates",
    /// arXiv 2003.04693]: identical to `Lazy` between flush points, but
    /// every `period` commit groups the dirtied ancestor paths are
    /// flushed to the root in one batch — tree-update writes coalesce
    /// across the window while recovery-visible staleness stays bounded.
    Coalesced {
        /// Commit groups between batched tree flushes (min 1).
        period: u16,
    },
}

impl TreeUpdate {
    /// Does the Anubis shadow table track updates at tree `level`?
    /// Strictly-persisted levels never go stale in NVM and carry no
    /// shadow entries; Phoenix drops the shadow table entirely (its tree
    /// is rebuilt from the persisted counters at recovery).
    pub fn shadow_tracks(self, level: u8) -> bool {
        match self {
            TreeUpdate::Lazy | TreeUpdate::Coalesced { .. } => true,
            TreeUpdate::Eager | TreeUpdate::Phoenix => false,
            TreeUpdate::Triad { persist_levels } => level > persist_levels,
        }
    }

    /// Are leaf counter blocks shadow-tracked? When they are, a commit
    /// group carries the leaf's shadow entry and reads never need forward
    /// counter trials; when they are not, the durable leaf may lag the
    /// data by up to the Osiris budget after a crash.
    pub fn leaf_shadowed(self) -> bool {
        self.shadow_tracks(1)
    }

    /// Does the lazy Osiris maintenance apply on the commit path (bounded
    /// in-cache update counts with deferred leaf writebacks)?
    pub fn lazy_osiris(self) -> bool {
        matches!(self, TreeUpdate::Lazy | TreeUpdate::Coalesced { .. })
    }

    /// The highest tree level written through on every commit: `None` for
    /// the fully-lazy modes, `Some(u8::MAX)` for eager-to-the-root.
    pub fn persist_ceiling(self) -> Option<u8> {
        match self {
            TreeUpdate::Lazy | TreeUpdate::Coalesced { .. } => None,
            TreeUpdate::Eager => Some(u8::MAX),
            TreeUpdate::Triad { persist_levels } => Some(persist_levels),
            TreeUpdate::Phoenix => Some(1),
        }
    }

    /// Commit groups between batched dirty-path flushes, for the
    /// coalesced mode only.
    pub fn flush_period(self) -> Option<u16> {
        match self {
            TreeUpdate::Coalesced { period } => Some(period.max(1)),
            _ => None,
        }
    }
}

/// Which in-memory ECC the underlying DIMM runs (§3.1 decoupling: Soteria
/// works the same over any of these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EccKind {
    /// Chipkill-Correct (Table 4 default).
    #[default]
    Chipkill,
    /// Double-chipkill (stronger-ECC ablation).
    DoubleChipkill,
    /// SEC-DED Hamming(72,64) (weaker-ECC ablation).
    SecDed,
}

/// Full configuration of a secure memory controller.
#[derive(Clone, Debug)]
pub struct SecureMemoryConfig {
    capacity_bytes: u64,
    cache_bytes: u64,
    cache_ways: usize,
    wpq_entries: usize,
    cloning: CloningPolicy,
    shadow_mode: ShadowMode,
    fidelity: Fidelity,
    ecc: EccKind,
    tree_update: TreeUpdate,
    osiris_limit: u8,
    encryption_key: EncryptionKey,
    mac_key: MacKey,
}

impl SecureMemoryConfig {
    /// Starts building a configuration.
    pub fn builder() -> SecureMemoryConfigBuilder {
        SecureMemoryConfigBuilder::default()
    }

    /// Protected capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Protected capacity in 64-byte lines.
    pub fn data_lines(&self) -> u64 {
        self.capacity_bytes / 64
    }

    /// Metadata-cache size in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Metadata-cache associativity.
    pub fn cache_ways(&self) -> usize {
        self.cache_ways
    }

    /// WPQ capacity in entries.
    pub fn wpq_entries(&self) -> usize {
        self.wpq_entries
    }

    /// The cloning policy.
    pub fn cloning(&self) -> &CloningPolicy {
        &self.cloning
    }

    /// Shadow-entry format.
    pub fn shadow_mode(&self) -> ShadowMode {
        self.shadow_mode
    }

    /// Modeling fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Underlying DIMM ECC.
    pub fn ecc(&self) -> EccKind {
        self.ecc
    }

    /// Tree update propagation scheme.
    pub fn tree_update(&self) -> TreeUpdate {
        self.tree_update
    }

    /// Osiris in-cache update limit per counter.
    pub fn osiris_limit(&self) -> u8 {
        self.osiris_limit
    }

    /// Memory-encryption key.
    pub fn encryption_key(&self) -> EncryptionKey {
        self.encryption_key
    }

    /// MAC key.
    pub fn mac_key(&self) -> MacKey {
        self.mac_key
    }

    /// Replaces both keys (used by the controller's key-rotation path so
    /// that post-rotation crash images carry the keys the data is
    /// actually encrypted under).
    pub(crate) fn set_keys(&mut self, encryption: EncryptionKey, mac: MacKey) {
        self.encryption_key = encryption;
        self.mac_key = mac;
    }

    /// Builds the memory layout this configuration implies.
    pub fn build_layout(&self) -> MemoryLayout {
        let slots = self.cache_bytes / 64;
        let levels = levels_for(self.data_lines());
        let max_extra = self.cloning.max_depth(levels) - 1;
        MemoryLayout::new(self.data_lines(), slots, max_extra)
    }
}

fn levels_for(data_lines: u64) -> u8 {
    let mut count = data_lines / COUNTERS_PER_BLOCK;
    let mut levels = 1u8;
    while count > crate::layout::TREE_ARITY {
        count = count.div_ceil(crate::layout::TREE_ARITY);
        levels += 1;
    }
    levels
}

/// Builder for [`SecureMemoryConfig`].
#[derive(Clone, Debug)]
pub struct SecureMemoryConfigBuilder {
    capacity_bytes: u64,
    cache_bytes: u64,
    cache_ways: usize,
    wpq_entries: usize,
    cloning: CloningPolicy,
    shadow_mode: ShadowMode,
    fidelity: Fidelity,
    ecc: EccKind,
    tree_update: TreeUpdate,
    osiris_limit: u8,
    encryption_key: EncryptionKey,
    mac_key: MacKey,
}

impl Default for SecureMemoryConfigBuilder {
    fn default() -> Self {
        Self {
            capacity_bytes: 1 << 24, // 16 MiB: test-friendly default
            cache_bytes: 512 * 1024, // Table 3
            cache_ways: 8,
            wpq_entries: 8, // conservative minimum (§3.2.1)
            cloning: CloningPolicy::None,
            shadow_mode: ShadowMode::Duplicated,
            fidelity: Fidelity::Functional,
            ecc: EccKind::Chipkill,
            tree_update: TreeUpdate::Lazy,
            osiris_limit: 4,
            encryption_key: EncryptionKey::from_bytes([0x4b; 16]),
            mac_key: MacKey::from_bytes([0x6d; 32]),
        }
    }
}

impl SecureMemoryConfigBuilder {
    /// Sets the protected capacity (must be a power-of-two multiple of
    /// 4 KiB).
    pub fn capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Sets the metadata-cache size and associativity.
    pub fn metadata_cache(&mut self, bytes: u64, ways: usize) -> &mut Self {
        self.cache_bytes = bytes;
        self.cache_ways = ways;
        self
    }

    /// Sets the WPQ capacity.
    pub fn wpq_entries(&mut self, entries: usize) -> &mut Self {
        self.wpq_entries = entries;
        self
    }

    /// Sets the cloning policy (Baseline / SRC / SAC / custom).
    pub fn cloning(&mut self, policy: CloningPolicy) -> &mut Self {
        self.cloning = policy;
        self
    }

    /// Sets the shadow-entry format.
    pub fn shadow_mode(&mut self, mode: ShadowMode) -> &mut Self {
        self.shadow_mode = mode;
        self
    }

    /// Sets the modeling fidelity.
    pub fn fidelity(&mut self, fidelity: Fidelity) -> &mut Self {
        self.fidelity = fidelity;
        self
    }

    /// Sets the underlying ECC.
    pub fn ecc(&mut self, ecc: EccKind) -> &mut Self {
        self.ecc = ecc;
        self
    }

    /// Sets the tree update propagation scheme.
    pub fn tree_update(&mut self, update: TreeUpdate) -> &mut Self {
        self.tree_update = update;
        self
    }

    /// Sets the Osiris per-counter in-cache update limit.
    pub fn osiris_limit(&mut self, limit: u8) -> &mut Self {
        self.osiris_limit = limit.max(1);
        self
    }

    /// Sets the encryption key.
    pub fn encryption_key(&mut self, key: EncryptionKey) -> &mut Self {
        self.encryption_key = key;
        self
    }

    /// Sets the MAC key.
    pub fn mac_key(&mut self, key: MacKey) -> &mut Self {
        self.mac_key = key;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the capacity is not a power-of-two
    /// multiple of 4 KiB, the cache cannot form power-of-two sets, or the
    /// deepest clone group cannot commit atomically through the WPQ.
    pub fn build(&self) -> Result<SecureMemoryConfig, ConfigError> {
        let cap = self.capacity_bytes;
        if cap == 0 || !cap.is_multiple_of(4096) || !(cap / 4096).is_power_of_two() {
            return Err(ConfigError::InvalidCapacity {
                capacity_bytes: cap,
            });
        }
        let lines = self.cache_bytes / 64;
        if self.cache_ways == 0
            || lines < self.cache_ways as u64
            || !(lines / self.cache_ways as u64).is_power_of_two()
        {
            return Err(ConfigError::InvalidCacheShape {
                bytes: self.cache_bytes,
                ways: self.cache_ways as u32,
            });
        }
        let levels = levels_for(cap / 64);
        // A leaf writeback group is primary + clones + the leaf-MAC
        // read-modify-write line, so the depth budget keeps one WPQ slot
        // in reserve for the MAC line.
        let depth = self.cloning.max_depth(levels);
        if depth as usize + 1 > self.wpq_entries {
            return Err(ConfigError::CloneDepthExceedsWpq {
                depth,
                wpq_entries: self.wpq_entries,
            });
        }
        Ok(SecureMemoryConfig {
            capacity_bytes: self.capacity_bytes,
            cache_bytes: self.cache_bytes,
            cache_ways: self.cache_ways,
            wpq_entries: self.wpq_entries,
            cloning: self.cloning.clone(),
            shadow_mode: self.shadow_mode,
            fidelity: self.fidelity,
            ecc: self.ecc,
            tree_update: self.tree_update,
            osiris_limit: self.osiris_limit,
            encryption_key: self.encryption_key,
            mac_key: self.mac_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builds() {
        let c = SecureMemoryConfig::builder().build().unwrap();
        assert_eq!(c.capacity_bytes(), 1 << 24);
        assert_eq!(c.wpq_entries(), 8);
        assert_eq!(c.cloning(), &CloningPolicy::None);
    }

    #[test]
    fn rejects_bad_capacity() {
        for cap in [0u64, 1000, 4096 * 3] {
            assert!(matches!(
                SecureMemoryConfig::builder().capacity_bytes(cap).build(),
                Err(ConfigError::InvalidCapacity { .. })
            ));
        }
    }

    #[test]
    fn rejects_bad_cache_shape() {
        assert!(matches!(
            SecureMemoryConfig::builder()
                .metadata_cache(64 * 3, 1)
                .build(),
            Err(ConfigError::InvalidCacheShape { .. })
        ));
    }

    #[test]
    fn rejects_clone_depth_beyond_wpq() {
        let err = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 24)
            .cloning(CloningPolicy::Aggressive)
            .wpq_entries(4)
            .build();
        assert!(matches!(
            err,
            Err(ConfigError::CloneDepthExceedsWpq { depth: 5, .. })
        ));
    }

    #[test]
    fn sac_fits_minimum_wpq() {
        // Table 2's cap at depth 5 exists exactly so the minimum 8-entry
        // WPQ can commit a clone group atomically.
        assert!(SecureMemoryConfig::builder()
            .cloning(CloningPolicy::Aggressive)
            .wpq_entries(8)
            .build()
            .is_ok());
    }

    #[test]
    fn layout_uses_policy_depth() {
        let c = SecureMemoryConfig::builder()
            .cloning(CloningPolicy::Aggressive)
            .build()
            .unwrap();
        let layout = c.build_layout();
        assert_eq!(layout.max_extra_clones(), 4);
        let c = SecureMemoryConfig::builder().build().unwrap();
        assert_eq!(c.build_layout().max_extra_clones(), 0);
    }

    #[test]
    fn tree_update_strategy_matches_legacy_decisions() {
        // The strategy methods must reproduce the decisions the
        // controller previously took by matching on the variant inline
        // (the refactor is proven byte-identical by the golden tests;
        // this pins the per-variant truth table directly).
        let lazy = TreeUpdate::Lazy;
        assert!(lazy.shadow_tracks(1) && lazy.shadow_tracks(4));
        assert!(lazy.leaf_shadowed() && lazy.lazy_osiris());
        assert_eq!(lazy.persist_ceiling(), None);
        assert_eq!(lazy.flush_period(), None);

        let eager = TreeUpdate::Eager;
        assert!(!eager.shadow_tracks(1) && !eager.shadow_tracks(4));
        assert!(!eager.leaf_shadowed() && !eager.lazy_osiris());
        assert_eq!(eager.persist_ceiling(), Some(u8::MAX));

        let triad = TreeUpdate::Triad { persist_levels: 1 };
        assert!(!triad.shadow_tracks(1) && triad.shadow_tracks(2));
        assert!(!triad.leaf_shadowed() && !triad.lazy_osiris());
        assert_eq!(triad.persist_ceiling(), Some(1));
        let triad0 = TreeUpdate::Triad { persist_levels: 0 };
        assert!(triad0.leaf_shadowed(), "tier 0 persists nothing extra");
        assert_eq!(triad0.persist_ceiling(), Some(0));

        let phoenix = TreeUpdate::Phoenix;
        assert!(!phoenix.shadow_tracks(1) && !phoenix.shadow_tracks(4));
        assert!(!phoenix.lazy_osiris());
        assert_eq!(phoenix.persist_ceiling(), Some(1));

        let co = TreeUpdate::Coalesced { period: 4 };
        assert!(co.shadow_tracks(1) && co.leaf_shadowed() && co.lazy_osiris());
        assert_eq!(co.persist_ceiling(), None);
        assert_eq!(co.flush_period(), Some(4));
        assert_eq!(
            TreeUpdate::Coalesced { period: 0 }.flush_period(),
            Some(1),
            "flush period floors at one"
        );
    }

    #[test]
    fn osiris_limit_floor_is_one() {
        let c = SecureMemoryConfig::builder()
            .osiris_limit(0)
            .build()
            .unwrap();
        assert_eq!(c.osiris_limit(), 1);
    }
}
