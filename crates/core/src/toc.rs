//! Tree-of-Counters (ToC) nodes — the SGX-style integrity tree of Fig. 2.
//!
//! Each 64-byte node holds eight 56-bit counters (one per child) and a
//! 64-bit embedded MAC (8 × 56 + 64 = 512 bits exactly). The counter for
//! child `i` increments every time child `i` is written back to memory,
//! and the child's MAC is computed over the child's payload **and** that
//! parent counter — the inter-level dependency that defeats replay but
//! also makes ToC nodes *unreconstructable* from their children (§2.5),
//! which is why Soteria must clone them.
//!
//! # Example
//!
//! ```
//! use soteria::toc::TocNode;
//!
//! let mut node = TocNode::new();
//! node.bump(2);
//! assert_eq!(node.counter(2), 1);
//! let restored = TocNode::from_bytes(&node.to_bytes());
//! assert_eq!(restored, node);
//! ```

/// Children per node.
pub const ARITY: usize = 8;
/// Counter width in bits.
pub const COUNTER_BITS: u32 = 56;
/// Mask for a 56-bit counter.
pub const COUNTER_MASK: u64 = (1 << COUNTER_BITS) - 1;

/// An 8-ary ToC node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TocNode {
    counters: [u64; ARITY], // 56-bit each
    mac: u64,
}

impl Default for TocNode {
    fn default() -> Self {
        Self::new()
    }
}

impl TocNode {
    /// A fresh node: all counters zero, MAC zero (set by the controller
    /// before first writeback).
    pub fn new() -> Self {
        Self {
            counters: [0; ARITY],
            mac: 0,
        }
    }

    /// The counter of child `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn counter(&self, slot: usize) -> u64 {
        self.counters[slot]
    }

    /// All eight counters (the MAC'd payload).
    pub fn counters(&self) -> &[u64; ARITY] {
        &self.counters
    }

    /// The embedded MAC.
    pub fn mac(&self) -> u64 {
        self.mac
    }

    /// Replaces the embedded MAC (done by the controller at writeback).
    pub fn set_mac(&mut self, mac: u64) {
        self.mac = mac;
    }

    /// Overwrites the counter of child `slot` (used during recovery when
    /// restoring from shadow LSBs).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8` or `value` exceeds 56 bits.
    pub fn set_counter(&mut self, slot: usize, value: u64) {
        assert!(value <= COUNTER_MASK, "counter exceeds 56 bits");
        self.counters[slot] = value;
    }

    /// Increments the counter of child `slot` (wrapping at 56 bits — which
    /// takes ~2 × 10^16 writebacks, i.e. never in practice).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn bump(&mut self, slot: usize) -> u64 {
        self.counters[slot] = (self.counters[slot] + 1) & COUNTER_MASK;
        self.counters[slot]
    }

    /// Serializes into a 64-byte line: eight 7-byte LE counters then the
    /// 8-byte MAC.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, &c) in self.counters.iter().enumerate() {
            out[7 * i..7 * i + 7].copy_from_slice(&c.to_le_bytes()[..7]);
        }
        out[56..64].copy_from_slice(&self.mac.to_le_bytes());
        out
    }

    /// Deserializes from a 64-byte line.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut counters = [0u64; ARITY];
        for (i, c) in counters.iter_mut().enumerate() {
            let mut buf = [0u8; 8];
            buf[..7].copy_from_slice(&bytes[7 * i..7 * i + 7]);
            *c = u64::from_le_bytes(buf);
        }
        let mac = soteria_rt::bytes::u64_le(&bytes[56..64]);
        Self { counters, mac }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_zero() {
        let n = TocNode::new();
        assert!(n.counters().iter().all(|&c| c == 0));
        assert_eq!(n.mac(), 0);
    }

    #[test]
    fn bump_is_per_slot() {
        let mut n = TocNode::new();
        assert_eq!(n.bump(3), 1);
        assert_eq!(n.bump(3), 2);
        assert_eq!(n.counter(3), 2);
        assert_eq!(n.counter(4), 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut n = TocNode::new();
        for slot in 0..ARITY {
            n.set_counter(slot, (slot as u64 + 1) * 0x1234_5678);
        }
        n.set_mac(0xdead_beef_cafe_f00d);
        assert_eq!(TocNode::from_bytes(&n.to_bytes()), n);
    }

    #[test]
    fn max_counters_roundtrip() {
        let mut n = TocNode::new();
        for slot in 0..ARITY {
            n.set_counter(slot, COUNTER_MASK);
        }
        n.set_mac(u64::MAX);
        assert_eq!(TocNode::from_bytes(&n.to_bytes()), n);
    }

    #[test]
    fn bump_wraps_at_56_bits() {
        let mut n = TocNode::new();
        n.set_counter(0, COUNTER_MASK);
        assert_eq!(n.bump(0), 0);
    }

    #[test]
    #[should_panic(expected = "56 bits")]
    fn set_counter_validated() {
        TocNode::new().set_counter(0, 1 << 56);
    }

    #[test]
    fn layout_is_exactly_64_bytes() {
        // 8 x 56-bit counters + 64-bit MAC fill the line with no slack:
        // flipping any byte must change the decoded node.
        let n = TocNode::new();
        let bytes = n.to_bytes();
        for i in 0..64 {
            let mut b = bytes;
            b[i] ^= 0xff;
            assert_ne!(TocNode::from_bytes(&b), n, "byte {i} is dead space");
        }
    }
}
