//! Error types for the secure memory controller.

use crate::layout::MetaId;
use crate::DataAddr;

/// Errors produced while building a [`crate::SecureMemoryConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Capacity must be a power-of-two multiple of 4 KiB pages.
    InvalidCapacity {
        /// The rejected capacity.
        capacity_bytes: u64,
    },
    /// The metadata cache must hold at least one set of the given ways.
    InvalidCacheShape {
        /// Requested cache bytes.
        bytes: u64,
        /// Requested associativity.
        ways: u32,
    },
    /// The WPQ cannot atomically commit the deepest clone group.
    CloneDepthExceedsWpq {
        /// Deepest requested clone depth.
        depth: u8,
        /// WPQ capacity.
        wpq_entries: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidCapacity { capacity_bytes } => {
                write!(
                    f,
                    "capacity {capacity_bytes} is not a power-of-two multiple of 4096"
                )
            }
            ConfigError::InvalidCacheShape { bytes, ways } => {
                write!(
                    f,
                    "metadata cache of {bytes} bytes cannot form sets of {ways} ways"
                )
            }
            ConfigError::CloneDepthExceedsWpq { depth, wpq_entries } => write!(
                f,
                "clone depth {depth} cannot commit atomically through a {wpq_entries}-entry WPQ"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which metadata class an error touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetadataClass {
    /// A split-counter block (tree leaf).
    CounterBlock,
    /// An intermediate ToC node.
    TreeNode,
    /// A data-MAC line.
    DataMac,
    /// An Anubis shadow-table entry.
    ShadowEntry,
}

impl std::fmt::Display for MetadataClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MetadataClass::CounterBlock => "counter block",
            MetadataClass::TreeNode => "tree node",
            MetadataClass::DataMac => "data MAC",
            MetadataClass::ShadowEntry => "shadow entry",
        };
        f.write_str(s)
    }
}

/// Runtime errors from the secure memory datapath.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemoryError {
    /// Address beyond the protected capacity.
    AddressOutOfRange {
        /// The rejected address.
        addr: DataAddr,
        /// Number of addressable data lines.
        lines: u64,
    },
    /// The data line itself had a detected uncorrectable ECC error
    /// (contributes to `L_error` in Fig. 12).
    DataUncorrectable {
        /// The affected line.
        addr: DataAddr,
    },
    /// A data-line MAC mismatch with healthy metadata: tampering (or
    /// silent data corruption beyond ECC).
    IntegrityViolation {
        /// The affected line.
        addr: DataAddr,
    },
    /// A transaction's staged atomic group (ciphertext + data-MAC +
    /// shadow lines) cannot fit the WPQ even when empty, so it can never
    /// commit atomically. Nothing was persisted; split the transaction
    /// and retry.
    TransactionTooLarge {
        /// Data writes in the rejected transaction.
        writes: usize,
        /// Lines the staged atomic group needed.
        group: usize,
        /// WPQ capacity in lines.
        capacity: usize,
    },
    /// A transaction bumps one counter slot more times than the Osiris
    /// recovery trial budget, so a crash after commit could leave the
    /// durable counter unrecoverably far behind. Nothing was persisted;
    /// split the transaction and retry.
    TransactionExceedsOsirisBudget {
        /// Bumps the transaction wanted on a single counter slot.
        slot_bumps: u8,
        /// The configured `osiris_limit`.
        osiris_limit: u8,
    },
    /// A metadata block was lost — uncorrectable in memory and, under
    /// Soteria, every clone also failed. All data it covers becomes
    /// unverifiable (contributes to `L_unverifiable`).
    MetadataUnverifiable {
        /// Which block was lost.
        meta: MetaId,
        /// Metadata class of the lost block.
        class: MetadataClass,
        /// Number of data lines rendered unverifiable.
        covered_lines: u64,
    },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::AddressOutOfRange { addr, lines } => {
                write!(f, "{addr} out of range (capacity {lines} lines)")
            }
            MemoryError::DataUncorrectable { addr } => {
                write!(f, "uncorrectable memory error in data {addr}")
            }
            MemoryError::IntegrityViolation { addr } => {
                write!(f, "integrity verification failed for {addr}")
            }
            MemoryError::TransactionTooLarge {
                writes,
                group,
                capacity,
            } => write!(
                f,
                "transaction of {writes} writes stages an atomic group of {group} lines, \
                 exceeding the WPQ capacity {capacity}; it can never commit"
            ),
            MemoryError::TransactionExceedsOsirisBudget {
                slot_bumps,
                osiris_limit,
            } => write!(
                f,
                "transaction bumps one counter slot {slot_bumps} times, exceeding the \
                 Osiris recovery budget of {osiris_limit} trials"
            ),
            MemoryError::MetadataUnverifiable {
                meta,
                class,
                covered_lines,
            } => write!(
                f,
                "{class} {meta} lost; {covered_lines} data lines unverifiable"
            ),
        }
    }
}

impl std::error::Error for MemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = MemoryError::DataUncorrectable {
            addr: DataAddr::new(5),
        };
        assert!(e.to_string().contains("uncorrectable"));
        let e = ConfigError::InvalidCapacity {
            capacity_bytes: 100,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemoryError>();
        assert_send_sync::<ConfigError>();
    }
}
