//! Physical layout of data and security metadata in NVM.
//!
//! For a protected capacity of `N` 64-byte data lines the controller
//! reserves, after the data region:
//!
//! * **data MACs** — one 64-bit MAC per data line, 8 per line (`N/8`),
//! * **counter blocks** — 64-ary split counters, one block per 4 KiB page
//!   (`N/64`); these are the **leaves (L1)** of the integrity tree,
//! * **leaf MACs** — one 64-bit MAC per counter block (split-counter
//!   blocks have no room for an embedded MAC),
//! * **ToC levels L2..Ltop** — 8-ary Tree-of-Counters nodes, each level
//!   1/8th the size of the one below, until a level has ≤ 8 nodes (their
//!   parent is the on-chip root),
//! * **shadow table** — one 64-byte Anubis entry per metadata-cache line,
//! * **clone regions** — Soteria's mirrors: clone copy `c` of metadata
//!   block `m` lives at `clone_base[c] + flat_index(m)`, far from the
//!   original so no single row/column/bank fault covers both.
//!
//! The paper's storage accounting (§3.1): counters 1/64 ≈ 1.56 %, L2
//! 1/512 ≈ 0.19 %, upper levels ≈ 0.02 %, ≈ 1.78 % in total for the ToC.

use soteria_nvm::LineAddr;

use crate::DataAddr;

/// Data lines covered by one counter block (64-ary split counter).
pub const COUNTERS_PER_BLOCK: u64 = 64;
/// Arity of the ToC levels above the leaves.
pub const TREE_ARITY: u64 = 8;
/// 64-bit MACs per 64-byte line.
pub const MACS_PER_LINE: u64 = 8;
/// Maximum clone copies (including the original) Soteria supports; bounded
/// by atomic WPQ commit (§3.2.1, Table 2 caps SAC at 5).
pub const MAX_CLONE_DEPTH: u8 = 5;
/// Line-sized column groups per DIMM row (the repo-wide geometry
/// convention, see `soteria_nvm::geometry`).
pub const COLS_PER_ROW: u64 = 1024;
/// Banks per chip (geometry convention).
pub const BANKS: u64 = 16;
/// Lines per full row group (all banks of one row index).
pub const ROW_GROUP: u64 = COLS_PER_ROW * BANKS;

/// Identity of one metadata block in the integrity tree.
///
/// `level` 1 is the counter-block (leaf) level; higher levels are ToC
/// nodes. `index` counts blocks within the level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetaId {
    /// Tree level (1 = leaf counter blocks).
    pub level: u8,
    /// Block index within the level.
    pub index: u64,
}

impl MetaId {
    /// Creates a metadata identity.
    pub fn new(level: u8, index: u64) -> Self {
        Self { level, index }
    }
}

impl std::fmt::Display for MetaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}[{}]", self.level, self.index)
    }
}

/// The memory map of one protected capacity.
#[derive(Clone, Debug)]
pub struct MemoryLayout {
    data_lines: u64,
    level_counts: Vec<u64>, // level_counts[0] = leaves (L1)
    base_data_mac: u64,
    base_leaf_mac: u64,
    level_bases: Vec<u64>,
    base_shadow: u64,
    shadow_slots: u64,
    // clone_level_bases[c][l-1] = base of extra copy c+1 of level l,
    // placed so each copy lands in a different bank/column/row than the
    // primary (fault independence, §3.2).
    clone_level_bases: Vec<Vec<u64>>,
    total_lines: u64,
}

fn align_row_group(x: u64) -> u64 {
    x.div_ceil(ROW_GROUP) * ROW_GROUP
}

impl MemoryLayout {
    /// Builds the layout for `data_lines` protected lines, `shadow_slots`
    /// shadow entries (= metadata-cache lines) and up to
    /// `max_extra_clones` mirror copies per metadata block.
    ///
    /// # Panics
    ///
    /// Panics if `data_lines` is not a positive multiple of 64 or
    /// `max_extra_clones + 1 > MAX_CLONE_DEPTH`.
    pub fn new(data_lines: u64, shadow_slots: u64, max_extra_clones: u8) -> Self {
        assert!(
            data_lines > 0 && data_lines.is_multiple_of(COUNTERS_PER_BLOCK),
            "data lines must be a positive multiple of {COUNTERS_PER_BLOCK}"
        );
        assert!(
            max_extra_clones < MAX_CLONE_DEPTH,
            "clone depth limited to {MAX_CLONE_DEPTH} by WPQ atomicity"
        );
        let mut level = data_lines / COUNTERS_PER_BLOCK;
        let mut level_counts = vec![level];
        while level > TREE_ARITY {
            level = level.div_ceil(TREE_ARITY);
            level_counts.push(level);
        }
        let base_data_mac = data_lines;
        let base_leaf_mac = base_data_mac + data_lines.div_ceil(MACS_PER_LINE);
        let mut cursor = base_leaf_mac + level_counts[0].div_ceil(MACS_PER_LINE);
        // Primary level bases are row-group aligned so that the clone
        // skews below translate into *uniform* bank/column distances for
        // every block of a level.
        let mut level_bases = Vec::with_capacity(level_counts.len());
        for &count in &level_counts {
            cursor = align_row_group(cursor);
            level_bases.push(cursor);
            cursor += count;
        }
        let base_shadow = cursor;
        cursor += shadow_slots;
        // Clone copy c+1 of any block sits (c+1) banks away and ~67(c+1)
        // columns away from the primary (and in a far-away row), so no
        // single-row, single-column, single-bank or rank-shared-bank fault
        // can cover a block together with one of its clones.
        let mut clone_level_bases = Vec::new();
        for c in 0..max_extra_clones as u64 {
            let skew = (c + 1) * COLS_PER_ROW + 67 * (c + 1);
            let mut bases = Vec::with_capacity(level_counts.len());
            for &count in &level_counts {
                cursor = align_row_group(cursor) + skew;
                bases.push(cursor);
                cursor += count;
            }
            clone_level_bases.push(bases);
        }
        Self {
            data_lines,
            level_counts,
            base_data_mac,
            base_leaf_mac,
            level_bases,
            base_shadow,
            shadow_slots,
            clone_level_bases,
            total_lines: cursor,
        }
    }

    /// Number of protected data lines.
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Protected capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.data_lines * 64
    }

    /// Number of tree levels stored in memory (L1 = leaves included; the
    /// root is on-chip and not counted, matching the paper's "9 levels
    /// excluding the root").
    pub fn levels(&self) -> u8 {
        self.level_counts.len() as u8
    }

    /// Number of blocks in `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or above the top level.
    pub fn level_count(&self, level: u8) -> u64 {
        assert!(
            level >= 1 && level <= self.levels(),
            "level {level} out of range"
        );
        self.level_counts[level as usize - 1]
    }

    /// Total NVM lines the layout occupies (data + all metadata).
    pub fn total_lines(&self) -> u64 {
        self.total_lines
    }

    /// Number of shadow-table slots.
    pub fn shadow_slots(&self) -> u64 {
        self.shadow_slots
    }

    /// Maximum extra clone copies the layout reserves space for.
    pub fn max_extra_clones(&self) -> u8 {
        self.clone_level_bases.len() as u8
    }

    /// The counter block (L1 leaf) protecting a data line.
    pub fn counter_block_of(&self, addr: DataAddr) -> MetaId {
        MetaId::new(1, addr.index() / COUNTERS_PER_BLOCK)
    }

    /// Which of the 64 counters within its block a data line uses.
    pub fn counter_slot_of(&self, addr: DataAddr) -> usize {
        (addr.index() % COUNTERS_PER_BLOCK) as usize
    }

    /// The parent of a metadata block, or `None` for top-level blocks
    /// (whose parent is the on-chip root).
    pub fn parent_of(&self, meta: MetaId) -> Option<MetaId> {
        if meta.level >= self.levels() {
            None
        } else {
            Some(MetaId::new(meta.level + 1, meta.index / TREE_ARITY))
        }
    }

    /// Which child slot (0..8) `meta` occupies in its parent (or in the
    /// root for top-level blocks).
    pub fn child_slot(&self, meta: MetaId) -> usize {
        (meta.index % TREE_ARITY) as usize
    }

    /// NVM address of a metadata block's primary copy.
    ///
    /// # Panics
    ///
    /// Panics if `meta` is outside the tree.
    pub fn meta_addr(&self, meta: MetaId) -> LineAddr {
        let count = self.level_count(meta.level);
        assert!(meta.index < count, "{meta} beyond level size {count}");
        LineAddr::new(self.level_bases[meta.level as usize - 1] + meta.index)
    }

    /// NVM address of clone copy `clone_no` (1-based) of a metadata block.
    ///
    /// # Panics
    ///
    /// Panics if `clone_no` is 0 or beyond the reserved clone regions.
    pub fn clone_addr(&self, meta: MetaId, clone_no: u8) -> LineAddr {
        assert!(
            clone_no >= 1 && (clone_no as usize) <= self.clone_level_bases.len(),
            "clone {clone_no} beyond reserved regions"
        );
        let count = self.level_count(meta.level);
        assert!(meta.index < count, "{meta} beyond level size {count}");
        LineAddr::new(
            self.clone_level_bases[clone_no as usize - 1][meta.level as usize - 1] + meta.index,
        )
    }

    /// NVM line and byte offset holding the 64-bit MAC of a data line.
    pub fn data_mac_slot(&self, addr: DataAddr) -> (LineAddr, usize) {
        let line = self.base_data_mac + addr.index() / MACS_PER_LINE;
        let offset = (addr.index() % MACS_PER_LINE) as usize * 8;
        (LineAddr::new(line), offset)
    }

    /// NVM line and byte offset holding the 64-bit MAC of a counter block.
    pub fn leaf_mac_slot(&self, leaf_index: u64) -> (LineAddr, usize) {
        let line = self.base_leaf_mac + leaf_index / MACS_PER_LINE;
        let offset = (leaf_index % MACS_PER_LINE) as usize * 8;
        (LineAddr::new(line), offset)
    }

    /// NVM address of a data line (identity mapping: data occupies the
    /// bottom of the device).
    pub fn data_line_addr(&self, addr: DataAddr) -> LineAddr {
        LineAddr::new(addr.index())
    }

    /// NVM address of shadow-table slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= shadow_slots`.
    pub fn shadow_slot_addr(&self, slot: u64) -> LineAddr {
        assert!(slot < self.shadow_slots, "shadow slot {slot} out of range");
        LineAddr::new(self.base_shadow + slot)
    }

    /// Number of data lines a metadata block covers (the blast radius of
    /// losing it — §2.7).
    pub fn covered_data_lines(&self, meta: MetaId) -> u64 {
        let per_block = COUNTERS_PER_BLOCK * TREE_ARITY.pow(meta.level as u32 - 1);
        let start = meta.index * per_block;
        if start >= self.data_lines {
            0
        } else {
            per_block.min(self.data_lines - start)
        }
    }

    /// The range of data lines a metadata block covers: `(first, count)`.
    pub fn covered_data_range(&self, meta: MetaId) -> (DataAddr, u64) {
        let per_block = COUNTERS_PER_BLOCK * TREE_ARITY.pow(meta.level as u32 - 1);
        let start = meta.index * per_block;
        (
            DataAddr::new(start.min(self.data_lines)),
            self.covered_data_lines(meta),
        )
    }

    /// Iterates over every metadata block of every level, bottom-up.
    pub fn iter_meta(&self) -> impl Iterator<Item = MetaId> + '_ {
        (1..=self.levels()).flat_map(move |level| {
            (0..self.level_count(level)).map(move |index| MetaId::new(level, index))
        })
    }

    /// Classifies an NVM line address back to the region it belongs to
    /// (useful for resilience accounting).
    pub fn classify(&self, addr: LineAddr) -> Region {
        let idx = addr.index();
        if idx < self.data_lines {
            return Region::Data(DataAddr::new(idx));
        }
        if idx < self.base_leaf_mac {
            return Region::DataMac;
        }
        if idx < self.base_leaf_mac + self.level_counts[0].div_ceil(MACS_PER_LINE) {
            return Region::LeafMac;
        }
        for level in (1..=self.levels()).rev() {
            let base = self.level_bases[level as usize - 1];
            if idx >= base && idx < base + self.level_count(level) {
                return Region::Meta(MetaId::new(level, idx - base));
            }
        }
        if idx >= self.base_shadow && idx < self.base_shadow + self.shadow_slots {
            return Region::Shadow(idx - self.base_shadow);
        }
        for (c, bases) in self.clone_level_bases.iter().enumerate() {
            for level in 1..=self.levels() {
                let base = bases[level as usize - 1];
                if idx >= base && idx < base + self.level_count(level) {
                    return Region::Clone {
                        meta: MetaId::new(level, idx - base),
                        clone_no: c as u8 + 1,
                    };
                }
            }
        }
        Region::Unmapped
    }
}

/// What an NVM line address holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// A protected data line.
    Data(DataAddr),
    /// Part of the data-MAC array.
    DataMac,
    /// Part of the leaf-MAC array.
    LeafMac,
    /// A tree metadata block (counter block or ToC node).
    Meta(MetaId),
    /// A shadow-table slot.
    Shadow(u64),
    /// A clone copy of a metadata block.
    Clone {
        /// Which block this clones.
        meta: MetaId,
        /// Which copy (1-based).
        clone_no: u8,
    },
    /// Reserved / outside the layout.
    Unmapped,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        // 1 MiB protected: 16384 data lines, 256 counter blocks,
        // L2 = 32, L3 = 4 (top, parent = root).
        MemoryLayout::new(16384, 128, 4)
    }

    #[test]
    fn level_structure() {
        let l = layout();
        assert_eq!(l.levels(), 3);
        assert_eq!(l.level_count(1), 256);
        assert_eq!(l.level_count(2), 32);
        assert_eq!(l.level_count(3), 4);
    }

    #[test]
    fn sixteen_gib_has_eight_levels() {
        let l = MemoryLayout::new((16u64 << 30) / 64, 8192, 1);
        assert_eq!(l.levels(), 8);
        assert_eq!(l.level_count(1), 1 << 22);
        assert_eq!(l.level_count(8), 2);
    }

    #[test]
    fn one_tib_level_counts_match_table2_scale() {
        let l = MemoryLayout::new((1u64 << 40) / 64, 8192, 4);
        // 2^28 counter blocks, then /8 per level until <= 8.
        assert_eq!(l.level_count(1), 1 << 28);
        assert_eq!(l.level_count(2), 1 << 25);
        assert_eq!(*l.level_counts.last().unwrap(), 2);
    }

    #[test]
    fn parent_child_relations() {
        let l = layout();
        let leaf = MetaId::new(1, 100);
        let parent = l.parent_of(leaf).unwrap();
        assert_eq!(parent, MetaId::new(2, 12));
        assert_eq!(l.child_slot(leaf), 4);
        let top = MetaId::new(3, 2);
        assert_eq!(l.parent_of(top), None);
        assert_eq!(l.child_slot(top), 2);
    }

    #[test]
    fn counter_block_mapping() {
        let l = layout();
        let d = DataAddr::new(200);
        assert_eq!(l.counter_block_of(d), MetaId::new(1, 3));
        assert_eq!(l.counter_slot_of(d), 8);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        let mut kinds = std::collections::HashMap::new();
        for idx in 0..l.total_lines() {
            let r = l.classify(LineAddr::new(idx));
            // Alignment padding is allowed to be unmapped; everything that
            // classifies must classify uniquely (checked by construction:
            // classify returns the first matching region).
            *kinds.entry(std::mem::discriminant(&r)).or_insert(0u64) += 1;
        }
        // data + mac + leaf-mac + meta + shadow + clones all present.
        assert!(kinds.len() >= 6);
    }

    #[test]
    fn clones_live_in_distinct_banks_and_columns() {
        // The fault-independence guarantee of §3.2: for every block and
        // every clone copy, bank AND column differ from the primary.
        let l = layout();
        let bank_of = |idx: u64| (idx / COLS_PER_ROW) % BANKS;
        let col_of = |idx: u64| idx % COLS_PER_ROW;
        for meta in l.iter_meta() {
            let p = l.meta_addr(meta).index();
            for c in 1..=l.max_extra_clones() {
                let q = l.clone_addr(meta, c).index();
                assert_ne!(bank_of(p), bank_of(q), "{meta} clone {c} shares a bank");
                assert_ne!(col_of(p), col_of(q), "{meta} clone {c} shares a column");
            }
        }
    }

    #[test]
    fn distinct_clone_copies_never_share_a_bank() {
        // Different copies of the same block must also be pairwise
        // bank-disjoint, or one bank fault could take out two copies.
        let l = layout();
        let bank_of = |idx: u64| (idx / COLS_PER_ROW) % BANKS;
        for meta in [MetaId::new(1, 0), MetaId::new(2, 31), MetaId::new(3, 3)] {
            let mut banks = vec![bank_of(l.meta_addr(meta).index())];
            for c in 1..=l.max_extra_clones() {
                banks.push(bank_of(l.clone_addr(meta, c).index()));
            }
            let set: std::collections::HashSet<_> = banks.iter().collect();
            assert_eq!(set.len(), banks.len(), "{meta}: {banks:?}");
        }
    }

    #[test]
    fn meta_and_clone_addresses_roundtrip_via_classify() {
        let l = layout();
        for meta in [
            MetaId::new(1, 0),
            MetaId::new(1, 255),
            MetaId::new(2, 31),
            MetaId::new(3, 3),
        ] {
            assert_eq!(l.classify(l.meta_addr(meta)), Region::Meta(meta));
            for c in 1..=4u8 {
                assert_eq!(
                    l.classify(l.clone_addr(meta, c)),
                    Region::Clone { meta, clone_no: c }
                );
            }
        }
    }

    #[test]
    fn coverage_shrinks_down_the_tree() {
        let l = layout();
        assert_eq!(l.covered_data_lines(MetaId::new(1, 0)), 64);
        assert_eq!(l.covered_data_lines(MetaId::new(2, 0)), 512);
        assert_eq!(l.covered_data_lines(MetaId::new(3, 0)), 4096);
    }

    #[test]
    fn coverage_clamps_at_capacity() {
        // 3 levels for 16384 lines: top covers 4096 each, 4 nodes cover it
        // exactly; a hypothetical partial top node would clamp.
        let l = MemoryLayout::new(4096 + 64, 16, 0); // 65 leaves -> L2 = 9 -> L3 = 2
        assert_eq!(l.covered_data_lines(MetaId::new(3, 0)), 4096);
        // The second top node covers only the 64-line remainder.
        assert_eq!(l.covered_data_lines(MetaId::new(3, 1)), 64);
    }

    #[test]
    fn mac_slots_pack_eight_per_line() {
        let l = layout();
        let (line0, off0) = l.data_mac_slot(DataAddr::new(0));
        let (line7, off7) = l.data_mac_slot(DataAddr::new(7));
        let (line8, _) = l.data_mac_slot(DataAddr::new(8));
        assert_eq!(line0, line7);
        assert_eq!(off0, 0);
        assert_eq!(off7, 56);
        assert_eq!(line8.index(), line0.index() + 1);
    }

    #[test]
    fn storage_overhead_matches_paper() {
        // §3.1: counters 1/64, tree ~0.22%, total ToC ~1.78% of capacity.
        let l = MemoryLayout::new((16u64 << 30) / 64, 8192, 0);
        let meta_lines: u64 = (1..=l.levels()).map(|lv| l.level_count(lv)).sum();
        let overhead = meta_lines as f64 / l.data_lines() as f64;
        assert!((overhead - 0.0178).abs() < 0.001, "overhead {overhead}");
    }

    #[test]
    fn iter_meta_visits_every_block_once() {
        let l = layout();
        let all: Vec<_> = l.iter_meta().collect();
        assert_eq!(all.len(), 256 + 32 + 4);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn data_lines_validated() {
        let _ = MemoryLayout::new(100, 16, 0);
    }

    #[test]
    #[should_panic(expected = "WPQ atomicity")]
    fn clone_depth_validated() {
        let _ = MemoryLayout::new(4096, 16, 5);
    }
}
