//! Morphable counters [Saileshwar et al., MICRO 2018] — the third counter
//! organization §2.4 surveys ("Morphable counter proposes packing more
//! counters in one block").
//!
//! One 64-byte block covers a **128-line (8 KiB) region** by morphing
//! between two formats as write traffic demands:
//!
//! * **Uniform** — a 64-bit major plus 128 × 3-bit minors (448 bits):
//!   twice the reach of the split counter, but minors overflow after just
//!   7 bumps, so uniformly-hot regions re-encrypt often.
//! * **Skewed** — a 64-bit major, 16 × 7-bit *hot* minors with 16 × 7-bit
//!   line selectors, and a 3-bit shared *cold* epoch... simplified here
//!   to: 16 tracked hot lines get 7-bit minors; all remaining lines share
//!   one 7-bit group counter. Bumping a cold line bumps the group counter
//!   and would change every cold line's counter, so it instead promotes
//!   the line to a hot slot (evicting the stalest hot entry forces a
//!   *partial* re-encryption of just that line's... region — modeled as a
//!   region re-encryption when no slot can be reclaimed).
//!
//! The module is self-contained (the controller's layout is fixed to
//! 64-ary split counters; integrating 128-ary coverage is future work —
//! see `DESIGN.md`), but the policy logic and costs are real and the
//! `counter_org` ablation binary compares overflow/re-encryption rates
//! against [`crate::counter::CounterBlock`] on identical write streams.

/// Lines covered by one morphable block.
pub const MORPH_LINES: usize = 128;
/// Uniform-format minor width.
pub const UNIFORM_BITS: u32 = 3;
/// Uniform-format minor limit (exclusive).
pub const UNIFORM_LIMIT: u8 = 1 << UNIFORM_BITS; // 8
/// Hot slots in the skewed format.
pub const HOT_SLOTS: usize = 16;
/// Skewed-format hot-minor limit (exclusive).
pub const HOT_LIMIT: u8 = 128;

/// Which format the block currently uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MorphFormat {
    /// 128 × 3-bit minors.
    Uniform,
    /// 16 tracked hot lines with 7-bit minors + shared cold counter.
    Skewed,
}

/// Outcome of bumping a line's counter in a morphable block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MorphOutcome {
    /// Counter advanced in place.
    Bumped {
        /// The line's new combined counter.
        counter: u64,
    },
    /// The block changed format (uniform → skewed on skew detection);
    /// counters are preserved, no re-encryption needed.
    Morphed {
        /// The new format.
        format: MorphFormat,
        /// The line's new combined counter.
        counter: u64,
    },
    /// The whole 8 KiB region must be re-encrypted (major bump).
    RegionReencrypt {
        /// The line's new combined counter.
        counter: u64,
    },
}

impl MorphOutcome {
    /// The combined counter after the bump.
    pub fn counter(&self) -> u64 {
        match *self {
            MorphOutcome::Bumped { counter }
            | MorphOutcome::Morphed { counter, .. }
            | MorphOutcome::RegionReencrypt { counter } => counter,
        }
    }
}

/// A morphable counter block covering 128 lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MorphableBlock {
    major: u64,
    format: MorphFormat,
    uniform: [u8; MORPH_LINES], // 3-bit minors
    hot_line: [u16; HOT_SLOTS], // which line each hot slot tracks
    hot_minor: [u8; HOT_SLOTS], // 7-bit minors
    hot_used: usize,
    bumps_since_morph: u64,
}

impl Default for MorphableBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl MorphableBlock {
    /// A fresh block in uniform format, all counters zero.
    pub fn new() -> Self {
        Self {
            major: 0,
            format: MorphFormat::Uniform,
            uniform: [0; MORPH_LINES],
            hot_line: [0; HOT_SLOTS],
            hot_minor: [0; HOT_SLOTS],
            hot_used: 0,
            bumps_since_morph: 0,
        }
    }

    /// Current format.
    pub fn format(&self) -> MorphFormat {
        self.format
    }

    /// The major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The combined counter of `line` (for the encryption IV).
    ///
    /// # Panics
    ///
    /// Panics if `line >= 128`.
    pub fn counter(&self, line: usize) -> u64 {
        assert!(line < MORPH_LINES, "line {line} out of range");
        let minor = match self.format {
            MorphFormat::Uniform => self.uniform[line] as u64,
            MorphFormat::Skewed => self
                .hot_slot_of(line)
                .map_or(0, |s| self.hot_minor[s] as u64),
        };
        self.major * HOT_LIMIT as u64 + minor
    }

    fn hot_slot_of(&self, line: usize) -> Option<usize> {
        self.hot_line[..self.hot_used]
            .iter()
            .position(|&l| l as usize == line)
    }

    /// Should the block morph? Uniform blocks with concentrated traffic
    /// (a minor nearing overflow while most lines are untouched) benefit
    /// from the skewed format.
    fn skew_detected(&self, line: usize) -> bool {
        let touched = self.uniform.iter().filter(|&&m| m > 0).count();
        self.uniform[line] + 1 >= UNIFORM_LIMIT && touched <= HOT_SLOTS
    }

    fn morph_to_skewed(&mut self) {
        // Preserve every nonzero minor in a hot slot (skew_detected
        // guarantees they fit).
        let mut used = 0;
        let mut hot_line = [0u16; HOT_SLOTS];
        let mut hot_minor = [0u8; HOT_SLOTS];
        for (line, &m) in self.uniform.iter().enumerate() {
            if m > 0 {
                hot_line[used] = line as u16;
                hot_minor[used] = m;
                used += 1;
            }
        }
        self.format = MorphFormat::Skewed;
        self.hot_line = hot_line;
        self.hot_minor = hot_minor;
        self.hot_used = used;
        self.bumps_since_morph = 0;
    }

    fn region_reencrypt(&mut self) {
        self.major += 1;
        self.format = MorphFormat::Uniform;
        self.uniform = [0; MORPH_LINES];
        self.hot_used = 0;
        self.bumps_since_morph = 0;
    }

    /// Advances the counter of `line`, morphing or re-encrypting as the
    /// format demands.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 128`.
    pub fn bump(&mut self, line: usize) -> MorphOutcome {
        assert!(line < MORPH_LINES, "line {line} out of range");
        self.bumps_since_morph += 1;
        match self.format {
            MorphFormat::Uniform => {
                if self.uniform[line] + 1 < UNIFORM_LIMIT {
                    self.uniform[line] += 1;
                    return MorphOutcome::Bumped {
                        counter: self.counter(line),
                    };
                }
                if self.skew_detected(line) {
                    // Few writers: morph, then bump in the skewed format.
                    self.morph_to_skewed();
                    // lint:allow(P1, morph_to_skewed assigns every current writer a hot slot)
                    let slot = self.hot_slot_of(line).expect("preserved by morph");
                    self.hot_minor[slot] += 1;
                    return MorphOutcome::Morphed {
                        format: MorphFormat::Skewed,
                        counter: self.counter(line),
                    };
                }
                // Broadly-hot region: nothing cheaper than re-encrypting.
                self.region_reencrypt();
                self.uniform[line] = 1;
                MorphOutcome::RegionReencrypt {
                    counter: self.counter(line),
                }
            }
            MorphFormat::Skewed => {
                if let Some(slot) = self.hot_slot_of(line) {
                    if self.hot_minor[slot] + 1 < HOT_LIMIT {
                        self.hot_minor[slot] += 1;
                        return MorphOutcome::Bumped {
                            counter: self.counter(line),
                        };
                    }
                    self.region_reencrypt();
                    self.uniform[line] = 1;
                    return MorphOutcome::RegionReencrypt {
                        counter: self.counter(line),
                    };
                }
                if self.hot_used < HOT_SLOTS {
                    // Promote the line to a hot slot (its counter was 0;
                    // bump to 1 — unique since the pair (major, minor)
                    // was never used for this line).
                    let slot = self.hot_used;
                    self.hot_used += 1;
                    self.hot_line[slot] = line as u16;
                    self.hot_minor[slot] = 1;
                    return MorphOutcome::Bumped {
                        counter: self.counter(line),
                    };
                }
                // No slot left: the skewed bet failed, re-encrypt.
                self.region_reencrypt();
                self.uniform[line] = 1;
                MorphOutcome::RegionReencrypt {
                    counter: self.counter(line),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_block_counters_zero() {
        let b = MorphableBlock::new();
        for line in 0..MORPH_LINES {
            assert_eq!(b.counter(line), 0);
        }
        assert_eq!(b.format(), MorphFormat::Uniform);
    }

    #[test]
    fn counters_never_repeat_per_line() {
        // The one invariant counter-mode encryption lives on.
        let mut b = MorphableBlock::new();
        let mut seen: Vec<HashSet<u64>> = vec![HashSet::new(); MORPH_LINES];
        for (line, set) in seen.iter_mut().enumerate() {
            set.insert(b.counter(line));
        }
        let mut rng = 0x1234_5678u64;
        for _ in 0..20_000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let line = (rng >> 33) as usize % MORPH_LINES;
            let c = b.bump(line).counter();
            assert!(seen[line].insert(c), "counter {c} reused for line {line}");
        }
    }

    #[test]
    fn single_hot_line_morphs_instead_of_reencrypting() {
        let mut b = MorphableBlock::new();
        let mut morphs = 0;
        let mut reencrypts = 0;
        for _ in 0..100 {
            match b.bump(5) {
                MorphOutcome::Morphed { .. } => morphs += 1,
                MorphOutcome::RegionReencrypt { .. } => reencrypts += 1,
                MorphOutcome::Bumped { .. } => {}
            }
        }
        assert_eq!(morphs, 1, "one morph at the 3-bit overflow");
        assert_eq!(
            reencrypts, 0,
            "skewed format absorbs 100 writes to one line"
        );
        assert_eq!(b.format(), MorphFormat::Skewed);
    }

    #[test]
    fn uniformly_hot_region_reencrypts() {
        let mut b = MorphableBlock::new();
        let mut reencrypts = 0;
        for round in 0..UNIFORM_LIMIT as usize {
            for line in 0..MORPH_LINES {
                if matches!(b.bump(line), MorphOutcome::RegionReencrypt { .. }) {
                    reencrypts += 1;
                }
                let _ = round;
            }
        }
        assert!(
            reencrypts >= 1,
            "all-hot region cannot stay in 3-bit minors"
        );
    }

    #[test]
    fn skewed_format_tracks_up_to_16_hot_lines() {
        let mut b = MorphableBlock::new();
        // Make line 0 hot enough to morph.
        for _ in 0..8 {
            b.bump(0);
        }
        assert_eq!(b.format(), MorphFormat::Skewed);
        // 15 more distinct lines fit without re-encryption.
        for line in 1..16 {
            assert!(
                matches!(b.bump(line), MorphOutcome::Bumped { .. }),
                "line {line}"
            );
        }
        // The 17th distinct writer forces a region re-encryption.
        assert!(matches!(b.bump(100), MorphOutcome::RegionReencrypt { .. }));
    }

    #[test]
    fn morph_preserves_counters() {
        let mut b = MorphableBlock::new();
        b.bump(3);
        b.bump(3);
        b.bump(9);
        let c3 = b.counter(3);
        let c9 = b.counter(9);
        // Drive line 3 past the 3-bit limit (minor 2 -> 7, then morph).
        for _ in 0..6 {
            b.bump(3);
        }
        assert_eq!(b.format(), MorphFormat::Skewed);
        assert_eq!(
            b.counter(9),
            c9,
            "untouched line keeps its counter across morph"
        );
        assert!(b.counter(3) > c3);
    }

    #[test]
    fn reencrypt_resets_to_uniform_with_higher_major() {
        let mut b = MorphableBlock::new();
        for _ in 0..8 {
            b.bump(0);
        }
        for line in 1..17 {
            b.bump(line);
        }
        // Force the re-encryption.
        b.bump(100);
        assert_eq!(b.format(), MorphFormat::Uniform);
        assert_eq!(b.major(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn line_bounds_checked() {
        MorphableBlock::new().counter(128);
    }
}
