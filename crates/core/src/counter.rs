//! Split-counter blocks: the leaves (L1) of the integrity tree.
//!
//! Following VAULT/Yan et al. (§2.4), one 64-byte block packs the
//! encryption counters of a whole 4 KiB page: a 64-bit **major** counter
//! plus 64 × 7-bit **minor** counters (64 + 448 = 512 bits exactly). The
//! per-line encryption counter is `major * 128 + minor`.
//!
//! When a minor counter overflows, the major counter increments, all
//! minors reset, and the controller must re-encrypt the whole page with
//! the new major — the split-counter cost the paper discusses.
//!
//! # Example
//!
//! ```
//! use soteria::counter::{BumpOutcome, CounterBlock};
//!
//! let mut block = CounterBlock::new();
//! assert_eq!(block.bump(3), BumpOutcome::Bumped { counter: 1 });
//! assert_eq!(block.counter(3), 1);
//! assert_eq!(block.counter(4), 0);
//! ```

/// Minor counters per block (one per line of the page).
pub const MINORS: usize = 64;
/// Minor counter width in bits.
pub const MINOR_BITS: u32 = 7;
/// Exclusive upper bound of a minor counter.
pub const MINOR_LIMIT: u8 = 1 << MINOR_BITS; // 128

/// Result of bumping a minor counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BumpOutcome {
    /// Minor incremented; `counter` is the new combined counter value.
    Bumped {
        /// New combined counter for the line.
        counter: u64,
    },
    /// Minor would overflow: the block performed a major bump (major + 1,
    /// all minors reset). The caller must re-encrypt the entire page under
    /// the new counters. `counter` is the line's new combined counter.
    PageReencrypt {
        /// New combined counter for the line (after the major bump).
        counter: u64,
    },
}

/// A 64-ary split-counter block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterBlock {
    major: u64,
    minors: [u8; MINORS],
}

impl Default for CounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterBlock {
    /// A fresh block: all counters zero.
    pub fn new() -> Self {
        Self {
            major: 0,
            minors: [0; MINORS],
        }
    }

    /// The major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The minor counter of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn minor(&self, slot: usize) -> u8 {
        self.minors[slot]
    }

    /// The combined encryption counter of `slot`.
    ///
    /// Wraps at 2^64 (reaching that would need 2^57 major bumps — never
    /// in a device's lifetime; wrapping keeps the accessor total even on
    /// corrupt deserialized blocks).
    pub fn counter(&self, slot: usize) -> u64 {
        self.major
            .wrapping_mul(MINOR_LIMIT as u64)
            .wrapping_add(self.minors[slot] as u64)
    }

    /// Increments the minor counter of `slot`.
    ///
    /// On overflow the block bumps its major, resets every minor and
    /// reports [`BumpOutcome::PageReencrypt`].
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn bump(&mut self, slot: usize) -> BumpOutcome {
        if self.minors[slot] + 1 == MINOR_LIMIT {
            self.major += 1;
            self.minors = [0; MINORS];
            BumpOutcome::PageReencrypt {
                counter: self.counter(slot),
            }
        } else {
            self.minors[slot] += 1;
            BumpOutcome::Bumped {
                counter: self.counter(slot),
            }
        }
    }

    /// Serializes into a 64-byte line: major (8 B LE) then the 64 minors
    /// packed 7 bits each (56 B).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        let mut bitpos = 0usize;
        for &m in &self.minors {
            let byte = 8 + bitpos / 8;
            let shift = bitpos % 8;
            out[byte] |= m << shift;
            if shift > 1 {
                out[byte + 1] |= m >> (8 - shift);
            }
            bitpos += MINOR_BITS as usize;
        }
        out
    }

    /// Deserializes from a 64-byte line.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let major = soteria_rt::bytes::u64_le(&bytes[..8]);
        let mut minors = [0u8; MINORS];
        let mut bitpos = 0usize;
        for m in &mut minors {
            let byte = 8 + bitpos / 8;
            let shift = bitpos % 8;
            let mut v = (bytes[byte] >> shift) as u16;
            if shift > 1 {
                v |= (bytes[byte + 1] as u16) << (8 - shift);
            }
            *m = (v & (MINOR_LIMIT as u16 - 1)) as u8;
            bitpos += MINOR_BITS as usize;
        }
        Self { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let b = CounterBlock::new();
        for slot in 0..MINORS {
            assert_eq!(b.counter(slot), 0);
        }
        assert_eq!(b.major(), 0);
    }

    #[test]
    fn bump_increments_one_slot() {
        let mut b = CounterBlock::new();
        assert_eq!(b.bump(10), BumpOutcome::Bumped { counter: 1 });
        assert_eq!(b.counter(10), 1);
        assert_eq!(b.counter(11), 0);
    }

    #[test]
    fn overflow_triggers_page_reencrypt() {
        let mut b = CounterBlock::new();
        for i in 1..=127 {
            assert_eq!(b.bump(0), BumpOutcome::Bumped { counter: i });
        }
        // 128th bump overflows the 7-bit minor.
        assert_eq!(b.bump(0), BumpOutcome::PageReencrypt { counter: 128 });
        assert_eq!(b.major(), 1);
        for slot in 0..MINORS {
            assert_eq!(b.minor(slot), 0);
        }
    }

    #[test]
    fn counters_are_strictly_monotonic_across_overflow() {
        let mut b = CounterBlock::new();
        let mut last = 0;
        for _ in 0..1000 {
            let c = match b.bump(5) {
                BumpOutcome::Bumped { counter } | BumpOutcome::PageReencrypt { counter } => counter,
            };
            assert!(c > last, "counter must never repeat ({c} after {last})");
            last = c;
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = CounterBlock::new();
        for slot in 0..MINORS {
            for _ in 0..(slot % 7) {
                b.bump(slot);
            }
        }
        b.major = 0xdead_beef_1234;
        let restored = CounterBlock::from_bytes(&b.to_bytes());
        assert_eq!(restored, b);
    }

    #[test]
    fn serialization_uses_all_64_bytes_distinctly() {
        // Max-valued minors everywhere must round-trip (packing boundary
        // conditions).
        let mut b = CounterBlock::new();
        b.minors = [MINOR_LIMIT - 1; MINORS];
        b.major = u64::MAX;
        assert_eq!(CounterBlock::from_bytes(&b.to_bytes()), b);
    }

    #[test]
    fn distinct_slots_serialize_distinctly() {
        let mut a = CounterBlock::new();
        a.bump(0);
        let mut b = CounterBlock::new();
        b.bump(1);
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
