//! Soteria Metadata Cloning (SMC) policies — Table 2.
//!
//! The *depth* of a node is its total number of copies (original +
//! clones). The paper evaluates two flavors:
//!
//! * **SRC** (Soteria Relaxed Cloning): depth 2 at every level.
//! * **SAC** (Soteria Aggressive Cloning): depth grows toward the root —
//!   2 for the two leaf-most levels (>10 % of evictions each, huge
//!   population), 3 for the next two (1–10 % of evictions), 4 for the
//!   rest, and 5 for the top level (the root's eight children, each
//!   covering 12.5 % of memory). Depth is capped at 5 so a whole clone
//!   group still commits atomically through a minimum-size (8-entry) WPQ
//!   (§3.2.1).

use crate::layout::MAX_CLONE_DEPTH;

/// A metadata cloning policy.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum CloningPolicy {
    /// No clones: the secure baseline (Anubis-style, paper reference 49).
    #[default]
    None,
    /// SRC — one clone for every node.
    Relaxed,
    /// SAC — Table 2 depths, deeper toward the root.
    Aggressive,
    /// Explicit per-level depths (index 0 = L1/leaves). Levels beyond the
    /// vector reuse its last entry. Values are clamped to
    /// [`MAX_CLONE_DEPTH`].
    Custom(Vec<u8>),
}

impl CloningPolicy {
    /// Total copies (original included) for a node at `level` of a tree
    /// with `levels` stored levels.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or above `levels`.
    pub fn depth(&self, level: u8, levels: u8) -> u8 {
        assert!(
            level >= 1 && level <= levels,
            "level {level} outside 1..={levels}"
        );
        match self {
            CloningPolicy::None => 1,
            CloningPolicy::Relaxed => 2,
            CloningPolicy::Aggressive => {
                if level == levels {
                    // The root's immediate children: maximum redundancy.
                    MAX_CLONE_DEPTH
                } else {
                    match level {
                        1 | 2 => 2,
                        3 | 4 => 3,
                        _ => 4,
                    }
                }
            }
            CloningPolicy::Custom(depths) => {
                let d = depths
                    .get(level as usize - 1)
                    .or(depths.last())
                    .copied()
                    .unwrap_or(1);
                d.clamp(1, MAX_CLONE_DEPTH)
            }
        }
    }

    /// Extra clone copies at `level` (depth − 1).
    pub fn extra_clones(&self, level: u8, levels: u8) -> u8 {
        self.depth(level, levels) - 1
    }

    /// The deepest depth the policy ever requests for a tree of `levels`.
    pub fn max_depth(&self, levels: u8) -> u8 {
        (1..=levels)
            .map(|l| self.depth(l, levels))
            .max()
            .unwrap_or(1)
    }

    /// Short scheme name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            CloningPolicy::None => "Baseline",
            CloningPolicy::Relaxed => "SRC",
            CloningPolicy::Aggressive => "SAC",
            CloningPolicy::Custom(_) => "Custom",
        }
    }
}

impl std::fmt::Display for CloningPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_src_row() {
        let p = CloningPolicy::Relaxed;
        for level in 1..=9 {
            assert_eq!(p.depth(level, 9), 2);
        }
    }

    #[test]
    fn table2_sac_row() {
        // Table 2: L1..L9 = 2 2 3 3 4 4 4 4 5 for the 9-level (1 TB) tree.
        let p = CloningPolicy::Aggressive;
        let expected = [2, 2, 3, 3, 4, 4, 4, 4, 5];
        for (level, &d) in (1..=9u8).zip(expected.iter()) {
            assert_eq!(p.depth(level, 9), d, "level {level}");
        }
    }

    #[test]
    fn baseline_never_clones() {
        let p = CloningPolicy::None;
        for level in 1..=9 {
            assert_eq!(p.extra_clones(level, 9), 0);
        }
        assert_eq!(p.max_depth(9), 1);
    }

    #[test]
    fn sac_small_tree_top_is_five() {
        let p = CloningPolicy::Aggressive;
        assert_eq!(p.depth(3, 3), 5);
        assert_eq!(p.depth(1, 3), 2);
        assert_eq!(p.max_depth(3), 5);
    }

    #[test]
    fn custom_clamps_and_extends() {
        let p = CloningPolicy::Custom(vec![1, 3, 9]);
        assert_eq!(p.depth(1, 5), 1);
        assert_eq!(p.depth(2, 5), 3);
        assert_eq!(p.depth(3, 5), MAX_CLONE_DEPTH); // clamped from 9
        assert_eq!(p.depth(5, 5), MAX_CLONE_DEPTH); // extends last entry
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(CloningPolicy::None.to_string(), "Baseline");
        assert_eq!(CloningPolicy::Relaxed.to_string(), "SRC");
        assert_eq!(CloningPolicy::Aggressive.to_string(), "SAC");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn level_validated() {
        CloningPolicy::Relaxed.depth(0, 9);
    }
}
