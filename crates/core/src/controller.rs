//! The secure memory controller: counter-mode encryption, ToC integrity
//! verification, lazy tree update, Anubis shadow tracking, Osiris update
//! limits and Soteria metadata cloning — the full datapath of Fig. 7.
//!
//! # Datapath summary
//!
//! **Write**: fetch the line's counter block (L1) through the metadata
//! cache (verifying the path to the on-chip root on misses), bump the
//! minor counter (overflow ⇒ page re-encryption; Osiris limit ⇒ early
//! writeback), persist an Anubis shadow entry, encrypt, write ciphertext
//! and data MAC. Up to three NVM writes per store — cipher, data MAC,
//! shadow log — exactly the §3.2.1 accounting.
//!
//! **Read**: fetch the counter block, read ciphertext + data MAC, verify,
//! decrypt.
//!
//! **Metadata eviction** (the lazy update): a dirty block leaving the
//! cache bumps its parent's counter (making the old MAC unreplayable),
//! gets its MAC recomputed under the new parent counter, and is written
//! back **together with its Soteria clones as one atomic WPQ group**.
//!
//! **Fault handling** (Fig. 9): an uncorrectable ECC error or MAC
//! mismatch on a metadata read triggers clone scanning; the first clone
//! that passes both ECC and MAC verification purifies every copy. Only
//! when all copies fail is the subtree declared unverifiable.

use soteria_crypto::ctr::CounterModeCipher;
use soteria_crypto::mac::MacEngine;
use soteria_ecc::CorrectionOutcome;
use soteria_rt::json::Json;
use soteria_rt::obs::Obs;
use soteria_rt::obs_fields;
use soteria_nvm::device::NvmDimm;
use soteria_nvm::geometry::DimmGeometry;
use soteria_nvm::timing::AccessKind;
use soteria_nvm::wpq::{AcceptOutcome, PendingWrite, WritePendingQueue};
use soteria_nvm::LineAddr;

use crate::config::{EccKind, Fidelity, SecureMemoryConfig};
use crate::counter::{CounterBlock, MINOR_LIMIT};
use crate::error::{MemoryError, MetadataClass};
use crate::layout::{MemoryLayout, MetaId, COUNTERS_PER_BLOCK};
use crate::mdcache::{CachedBlock, Evicted, MetadataCache};
use crate::shadow::{encode_entry, ShadowRecord, ShadowTree};
use crate::stats::{ControllerStats, WriteCategory};
use crate::toc::TocNode;
use crate::DataAddr;

/// Builds a DIMM geometry large enough for `total_lines` (Table 4 chip
/// organization, rows scaled to capacity).
pub(crate) fn geometry_for(total_lines: u64) -> DimmGeometry {
    let banks = 16u32;
    let cols = 1024u32;
    let rows = total_lines.div_ceil(banks as u64 * cols as u64).max(1) as u32;
    DimmGeometry::new(18, 9, 2, banks, rows, cols)
}

/// What a key rotation cost (§2.7 quantified).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyRotationReport {
    /// Data lines decrypted and re-encrypted.
    pub lines_reencrypted: u64,
    /// NVM reads issued by the rotation walk.
    pub nvm_reads: u64,
    /// NVM writes issued by the rotation walk.
    pub nvm_writes: u64,
}

impl KeyRotationReport {
    /// Serialized-PCM time estimate (150/300 ns).
    pub fn estimated_duration_ns(&self) -> u64 {
        self.nvm_reads * 150 + self.nvm_writes * 300
    }
}

/// A staged group of data writes committed atomically through the WPQ.
///
/// The atomic-and-committing storage contract: **any crash observes a
/// prefix of committed transactions, and never a torn transaction.**
/// Staging performs no durable work; [`Transaction::commit`] stages the
/// ciphertext lines, data-MAC lines, and counter-block shadow entries of
/// every write and accepts them into the ADR power-fail domain as one
/// [`WritePendingQueue::push_atomic`] group — the single commit point.
///
/// ```
/// # use soteria::{SecureMemoryConfig, SecureMemoryController, DataAddr};
/// # let config = SecureMemoryConfig::builder().capacity_bytes(1 << 20).build().unwrap();
/// # let mut memory = SecureMemoryController::new(config);
/// let mut tx = memory.transaction();
/// tx.write(DataAddr::new(1), &[0xaa; 64]);
/// tx.write(DataAddr::new(2), &[0xbb; 64]);
/// let receipt = tx.commit().unwrap();
/// assert_eq!(receipt.writes, 2);
/// ```
#[derive(Debug)]
pub struct Transaction<'a> {
    ctl: &'a mut SecureMemoryController,
    writes: Vec<(DataAddr, [u8; 64])>,
}

impl Transaction<'_> {
    /// Stages one line write. Later writes to the same line win. Nothing
    /// is persisted (or even validated) until [`Transaction::commit`].
    pub fn write(&mut self, addr: DataAddr, data: &[u8; 64]) -> &mut Self {
        self.writes.push((addr, *data));
        self
    }

    /// Number of writes staged so far.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// `true` when no writes are staged.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Commits every staged write as one atomic WPQ group.
    ///
    /// # Errors
    ///
    /// See [`SecureMemoryController::commit_writes`]. On error nothing
    /// of the transaction is durable or visible.
    pub fn commit(self) -> Result<CommitReceipt, MemoryError> {
        let writes = self.writes;
        self.ctl.commit_writes(&writes)
    }
}

/// What [`Transaction::commit`] (or [`SecureMemoryController::commit_writes`])
/// did at the WPQ level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Data writes in the committed transaction.
    pub writes: usize,
    /// Whether the group entered the ADR domain. `false` only when an
    /// armed crash fuse killed the WPQ first (the group was dropped
    /// whole — all-or-none even at the instant of death).
    pub accepted: bool,
    /// WPQ event-clock value of the group accept (the first crash point
    /// that observes this transaction). When `accepted` is false this is
    /// the clock value at which the dead queue dropped the group.
    pub accept_event: u64,
    /// Total lines in the atomic group (ciphertext + data-MAC + shadow).
    pub group_writes: usize,
}

/// Replaces-or-appends a staged line, keeping first-staged position and
/// category (a line is staged at most once per commit group).
fn stage_line(
    staged: &mut Vec<(LineAddr, [u8; 64], WriteCategory)>,
    addr: LineAddr,
    data: [u8; 64],
    category: WriteCategory,
) {
    match staged.iter_mut().find(|(a, _, _)| *a == addr) {
        Some((_, bytes, _)) => *bytes = data,
        None => staged.push((addr, data, category)),
    }
}

/// The secure NVM memory controller.
pub struct SecureMemoryController {
    config: SecureMemoryConfig,
    layout: MemoryLayout,
    device: NvmDimm,
    wpq: WritePendingQueue,
    cache: MetadataCache,
    cipher: Option<CounterModeCipher>,
    mac: Option<MacEngine>,
    /// On-chip ToC root: counters of the top-level nodes. Lives in the
    /// controller's persistent register file (survives power loss).
    pub(crate) root: TocNode,
    pub(crate) shadow_tree: Option<ShadowTree>,
    /// Persistent copy of the shadow-tree root.
    pub(crate) shadow_root: [u8; 32],
    stats: ControllerStats,
    trace: Vec<(LineAddr, AccessKind)>,
    obs: Obs,
    /// Commit groups since the last coalesced tree flush (volatile;
    /// only advanced under `TreeUpdate::Coalesced`).
    commits_since_flush: u64,
    /// Reusable commit-path buffers: taken at the top of `commit_writes` /
    /// `nvm_write_group` and returned (cleared, capacity kept) on the way
    /// out, so the steady-state write path allocates nothing per commit.
    scratch: CommitScratch,
}

/// Scratch vectors for the transaction commit path (see
/// [`SecureMemoryController::commit_writes`]); contents are dead between
/// commits, only the capacity is reused.
#[derive(Default)]
struct CommitScratch {
    pinned: Vec<LineAddr>,
    planned: Vec<(MetaId, [u8; COUNTERS_PER_BLOCK as usize])>,
    leaves: Vec<(MetaId, [u8; 64])>,
    staged: Vec<(LineAddr, [u8; 64], WriteCategory)>,
    shadow: Vec<(u64, [u8; 64])>,
    group: Vec<PendingWrite>,
}

impl std::fmt::Debug for SecureMemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureMemoryController")
            .field("capacity_bytes", &self.config.capacity_bytes())
            .field("cloning", self.config.cloning())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SecureMemoryController {
    /// Creates a controller (and its backing DIMM) from a configuration.
    pub fn new(config: SecureMemoryConfig) -> Self {
        let layout = config.build_layout();
        let geometry = geometry_for(layout.total_lines());
        let device = match config.fidelity() {
            Fidelity::Timing => NvmDimm::symbolic(geometry, 1),
            Fidelity::Functional => match config.ecc() {
                EccKind::Chipkill => NvmDimm::chipkill(geometry),
                EccKind::SecDed => NvmDimm::secded(geometry),
                EccKind::DoubleChipkill => NvmDimm::with_codec(
                    geometry,
                    Box::new(soteria_ecc::chipkill::ChipkillCodec::new(16, 2)),
                ),
            },
        };
        Self::with_device(config, device)
    }

    /// Creates a controller over an existing device (used by recovery).
    pub(crate) fn with_device(config: SecureMemoryConfig, device: NvmDimm) -> Self {
        let layout = config.build_layout();
        let functional = config.fidelity() == Fidelity::Functional;
        let cache = MetadataCache::new(config.cache_bytes(), config.cache_ways());
        let mut shadow_tree = functional.then(|| ShadowTree::new(layout.shadow_slots()));
        let shadow_root = shadow_tree.as_mut().map(|t| t.root()).unwrap_or_default();
        Self {
            wpq: WritePendingQueue::new(config.wpq_entries()),
            cache,
            cipher: functional.then(|| CounterModeCipher::new(config.encryption_key())),
            mac: functional.then(|| MacEngine::new(config.mac_key())),
            root: TocNode::new(),
            shadow_tree,
            shadow_root,
            stats: ControllerStats::default(),
            trace: Vec::new(),
            obs: Obs::disabled(),
            commits_since_flush: 0,
            scratch: CommitScratch::default(),
            layout,
            device,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SecureMemoryConfig {
        &self.config
    }

    /// The memory layout in force.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Metadata-cache statistics.
    pub fn cache_stats(&self) -> crate::mdcache::CacheStats {
        self.cache.stats()
    }

    /// The backing device (e.g. to inspect wear).
    pub fn device(&self) -> &NvmDimm {
        &self.device
    }

    /// Mutable device access for fault injection.
    pub fn device_mut(&mut self) -> &mut NvmDimm {
        &mut self.device
    }

    /// NVM accesses issued by the most recent `read`/`write` call, for the
    /// timing simulator. Cleared at the start of each operation.
    pub fn last_trace(&self) -> &[(LineAddr, AccessKind)] {
        &self.trace
    }

    /// The controller's observability handle (trace domain `"ctl"`).
    /// Disabled by default; see [`Self::enable_obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Mutable access to the controller's observability handle.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// Enables tracing and metrics on the controller **and** its backing
    /// device. Events carry only logical facts (addresses, levels,
    /// counters), so a trace of a deterministic run is byte-identical
    /// across replays.
    pub fn enable_obs(&mut self) {
        self.obs.enable();
        self.device.obs_mut().enable();
    }

    /// Exports the full trace as NDJSON: controller (`"ctl"`) events
    /// first, then device (`"dev"`) events. Each domain keeps its own
    /// monotonic sequence, so the concatenation validates with
    /// [`soteria_rt::obs::parse_ndjson`].
    pub fn export_trace_ndjson(&self) -> String {
        let mut out = self.obs.trace.export_ndjson();
        out.push_str(&self.device.obs().trace.export_ndjson());
        out
    }

    /// A deterministic metrics snapshot merging controller counters,
    /// metadata-cache statistics, WPQ statistics and device counters.
    pub fn metrics_snapshot(&self) -> Json {
        let mut merged = soteria_rt::obs::Metrics::enabled();
        merged.merge(&self.obs.metrics);
        merged.merge(&self.device.obs().metrics);
        let cs = self.cache.stats();
        merged.inc("mdcache.hits", cs.hits);
        merged.inc("mdcache.misses", cs.misses);
        merged.inc("mdcache.dirty_evictions", cs.dirty_evictions);
        merged.inc("mdcache.clean_evictions", cs.clean_evictions);
        merged.inc("wpq.accepted", self.wpq.accepted());
        merged.inc("wpq.stalls", self.wpq.stalls());
        merged.inc("wpq.drains", self.wpq.drains());
        merged.snapshot_json(false)
    }

    fn functional(&self) -> bool {
        self.config.fidelity() == Fidelity::Functional
    }

    // ----- raw NVM access (with WPQ forwarding and tracing) -----

    fn nvm_read(&mut self, addr: LineAddr) -> ([u8; 64], CorrectionOutcome) {
        self.trace.push((addr, AccessKind::Read));
        self.stats.nvm_reads += 1;
        // Write forwarding: the WPQ holds the freshest copy. Scan newest
        // first so the first hit is the last write and the scan can stop.
        if let Some(w) = self.wpq.iter().rev().find(|w| w.addr == addr) {
            return (w.data, CorrectionOutcome::Clean);
        }
        self.device.read_line(addr)
    }

    fn nvm_write(&mut self, addr: LineAddr, data: [u8; 64], category: WriteCategory) {
        self.trace.push((addr, AccessKind::Write));
        self.stats.nvm_writes += 1;
        self.stats.writes.record(category);
        let drains_before = self.wpq.drains();
        self.wpq.push(
            PendingWrite {
                addr,
                data,
            },
            &mut self.device,
        );
        self.note_wpq(drains_before);
    }

    fn nvm_write_group(&mut self, writes: &mut Vec<(LineAddr, [u8; 64], WriteCategory)>) -> AcceptOutcome {
        let mut group = std::mem::take(&mut self.scratch.group);
        group.clear();
        group.reserve(writes.len());
        for (addr, data, category) in writes.drain(..) {
            self.trace.push((addr, AccessKind::Write));
            self.stats.nvm_writes += 1;
            self.stats.writes.record(category);
            group.push(PendingWrite {
                addr,
                data,
            });
        }
        let drains_before = self.wpq.drains();
        let outcome = self
            .wpq
            .push_atomic(&mut group, &mut self.device)
            // lint:allow(P1, group sizes are validated against WPQ capacity at config/commit time)
            .expect("write group fits the WPQ");
        self.scratch.group = group;
        self.note_wpq(drains_before);
        outcome
    }

    /// Records WPQ activity after a push: occupancy into the metrics
    /// histogram, and a `wpq_drain` trace event when the push stall-drained
    /// entries to media. The cumulative `drains` field is the crash-point
    /// clock the crash-sweep test enumerates.
    #[inline]
    fn note_wpq(&mut self, drains_before: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.metrics.observe("wpq.occupancy", self.wpq.len() as u64);
        let drained = self.wpq.drains() - drains_before;
        if drained > 0 {
            let drains = self.wpq.drains();
            self.obs.trace.emit_with("ctl", "wpq_drain", || {
                obs_fields![("steps", drained), ("drains", drains)]
            });
        }
    }

    // ----- residency and fidelity invariants -----
    //
    // `fetch_meta` pins every block the datapath touches into the cache
    // before the helpers below run, and the functional-fidelity paths
    // only execute when the cipher/MAC engines were constructed. A miss
    // here is a controller bug, not a recoverable condition, so these
    // are the single audited panic sites for those invariants.

    /// Immutable view of a block `fetch_meta` made resident.
    fn resident(&self, addr: LineAddr) -> &CachedBlock {
        // lint:allow(P1, fetch_meta pinned the block before this call)
        self.cache.peek(addr).expect("block resident")
    }

    /// Mutable view of a block `fetch_meta` made resident.
    fn resident_mut(&mut self, addr: LineAddr) -> &mut CachedBlock {
        // lint:allow(P1, fetch_meta pinned the block before this call)
        self.cache.peek_mut(addr).expect("block resident")
    }

    /// Shadow slot of a block `fetch_meta` made resident.
    fn resident_slot(&self, addr: LineAddr) -> u64 {
        // lint:allow(P1, fetch_meta pinned the block before this call)
        self.cache.slot_of(addr).expect("block resident")
    }

    /// The cipher engine; callers are on the functional-fidelity path.
    fn functional_cipher(&self) -> &CounterModeCipher {
        // lint:allow(P1, functional fidelity constructs the cipher engine)
        self.cipher.as_ref().expect("functional mode")
    }

    /// The MAC engine; callers are on the functional-fidelity path.
    fn functional_mac(&self) -> &MacEngine {
        // lint:allow(P1, functional fidelity constructs the MAC engine)
        self.mac.as_ref().expect("functional mode")
    }

    // ----- MAC helpers -----

    fn data_mac_of(&self, addr: DataAddr, cipher: &[u8; 64], counter: u64) -> u64 {
        match &self.mac {
            Some(m) => m.data_mac(addr.index() * 64, cipher, counter),
            None => 0,
        }
    }

    fn read_mac_slot(&mut self, line: LineAddr, offset: usize) -> Result<u64, ()> {
        let (bytes, outcome) = self.nvm_read(line);
        if !outcome.is_usable() {
            return Err(());
        }
        Ok(soteria_rt::bytes::u64_le(&bytes[offset..offset + 8]))
    }

    fn write_mac_slot(
        &mut self,
        line: LineAddr,
        offset: usize,
        mac: u64,
        category: WriteCategory,
    ) -> Result<(), ()> {
        let (mut bytes, outcome) = self.nvm_read(line);
        if !outcome.is_usable() {
            return Err(());
        }
        bytes[offset..offset + 8].copy_from_slice(&mac.to_le_bytes());
        self.nvm_write(line, bytes, category);
        Ok(())
    }

    // ----- tree navigation -----

    /// The parent counter protecting `meta` (parent must be resident; the
    /// root register serves top-level blocks).
    fn parent_counter(&self, meta: MetaId) -> u64 {
        match self.layout.parent_of(meta) {
            None => self.root.counter(self.layout.child_slot(meta)),
            Some(p) => {
                let pb = self.resident(self.layout.meta_addr(p));
                TocNode::from_bytes(&pb.data).counter(self.layout.child_slot(meta))
            }
        }
    }

    /// Verifies metadata block content against its MAC, returning the
    /// parent counter it verified under. All-zero content with an
    /// all-zero MAC is the valid fresh state. Timing mode always
    /// verifies.
    ///
    /// Beyond the exact `parent_counter`, verification tolerates exactly
    /// **one pending parent bump** (`parent_counter + 1`): the
    /// atomic-commit write path accepts a block's group into the ADR
    /// domain *before* committing the parent's own durable update, so a
    /// crash between the two legitimately leaves the child one bump
    /// ahead of its parent. Trials only go forward — an attacker
    /// replaying an *older* block can never match — and the exact
    /// counter is tried first, so healthy paths never pay the trial.
    fn verify_meta(&mut self, meta: MetaId, bytes: &[u8; 64], parent_counter: u64) -> Option<u64> {
        let Some(mac) = self.mac.clone() else {
            return Some(parent_counter);
        };
        let addr = self.layout.meta_addr(meta);
        if meta.level == 1 {
            let (line, off) = self.layout.leaf_mac_slot(meta.index);
            let Ok(stored) = self.read_mac_slot(line, off) else {
                return None;
            };
            if stored == 0 && bytes.iter().all(|&b| b == 0) {
                return Some(parent_counter); // never written back: fresh leaf
            }
            [parent_counter, parent_counter + 1]
                .into_iter()
                .find(|&c| mac.counter_block_mac(addr.byte_addr(), bytes, c) == stored)
        } else {
            let node = TocNode::from_bytes(bytes);
            if node.mac() == 0 && node.counters().iter().all(|&c| c == 0) {
                return Some(parent_counter); // fresh node
            }
            [parent_counter, parent_counter + 1]
                .into_iter()
                .find(|&c| {
                    mac.tree_node_mac(addr.byte_addr(), node.counters(), c) == node.mac()
                })
        }
    }

    /// After a `+1` forward verification, folds the pending parent bump
    /// into the volatile parent copy (root register or cached node) so
    /// the chain is coherent for subsequent writebacks.
    fn repair_parent_counter(&mut self, meta: MetaId, counter: u64) {
        self.stats.forward_repairs += 1;
        self.obs.metrics.inc("ctl.forward_repairs", 1);
        self.obs.trace.emit_with("ctl", "parent_forward_repair", || {
            obs_fields![("level", meta.level), ("index", meta.index)]
        });
        let child_slot = self.layout.child_slot(meta);
        match self.layout.parent_of(meta) {
            None => {
                if !self.wpq.is_dead() {
                    self.root.set_counter(child_slot, counter);
                }
            }
            Some(p) => {
                let p_addr = self.layout.meta_addr(p);
                if let Some(pb) = self.cache.peek_mut(p_addr) {
                    let mut pn = TocNode::from_bytes(&pb.data);
                    pn.set_counter(child_slot, counter);
                    pb.data = pn.to_bytes();
                    self.cache.mark_dirty(p_addr);
                }
            }
        }
    }

    /// Reads a metadata block from NVM with Fig. 9 fault handling: ECC →
    /// MAC → clone scan → purify, or declare the subtree unverifiable.
    fn read_meta_repaired(&mut self, meta: MetaId) -> Result<[u8; 64], MemoryError> {
        let addr = self.layout.meta_addr(meta);
        let parent_counter = self.parent_counter(meta);
        let (bytes, outcome) = self.nvm_read(addr);
        let ue = outcome == CorrectionOutcome::Uncorrectable;
        let verified = if ue {
            self.stats.metadata_ue += 1;
            self.obs.metrics.inc("ctl.metadata_ue", 1);
            None
        } else {
            self.verify_meta(meta, &bytes, parent_counter)
        };
        if let Some(c) = verified {
            if c != parent_counter {
                self.repair_parent_counter(meta, c);
            }
            return Ok(bytes);
        }
        self.obs.trace.emit_with("ctl", "meta_fault", || {
            obs_fields![
                ("level", meta.level),
                ("index", meta.index),
                ("cause", if ue { "ue" } else { "mac_mismatch" }),
            ]
        });
        // Step 4 of Fig. 9: bring all clones and attempt repair.
        let extra = self
            .config
            .cloning()
            .extra_clones(meta.level, self.layout.levels());
        for clone_no in 1..=extra {
            let clone_addr = self.layout.clone_addr(meta, clone_no);
            let (cb, co) = self.nvm_read(clone_addr);
            let clone_ok = match co {
                CorrectionOutcome::Uncorrectable => None,
                _ => self.verify_meta(meta, &cb, parent_counter),
            };
            if let Some(c) = clone_ok {
                // Step 6-7: one verified survivor purifies every copy.
                self.nvm_write(addr, cb, WriteCategory::Repair);
                for other in 1..=extra {
                    if other != clone_no {
                        let oa = self.layout.clone_addr(meta, other);
                        self.nvm_write(oa, cb, WriteCategory::Repair);
                    }
                }
                self.stats.clone_repairs += 1;
                self.obs.metrics.inc("ctl.clone_repairs", 1);
                self.obs.trace.emit_with("ctl", "clone_repair", || {
                    obs_fields![
                        ("level", meta.level),
                        ("index", meta.index),
                        ("survivor", clone_no),
                    ]
                });
                if c != parent_counter {
                    self.repair_parent_counter(meta, c);
                }
                return Ok(cb);
            }
        }
        let class = if meta.level == 1 {
            MetadataClass::CounterBlock
        } else {
            MetadataClass::TreeNode
        };
        self.obs.trace.emit_with("ctl", "meta_unverifiable", || {
            obs_fields![
                ("level", meta.level),
                ("index", meta.index),
                ("clones_scanned", extra),
            ]
        });
        Err(MemoryError::MetadataUnverifiable {
            meta,
            class,
            covered_lines: self.layout.covered_data_lines(meta),
        })
    }

    /// Ensures `meta` is resident and verified, fetching (and verifying)
    /// ancestors first. `pinned` accumulates addresses that must survive
    /// this operation's evictions.
    fn fetch_meta(&mut self, meta: MetaId, pinned: &mut Vec<LineAddr>) -> Result<(), MemoryError> {
        let addr = self.layout.meta_addr(meta);
        if self.cache.lookup(addr).is_some() {
            self.obs.metrics.inc("ctl.meta_hits", 1);
            if !pinned.contains(&addr) {
                pinned.push(addr);
            }
            return Ok(());
        }
        self.obs.metrics.inc("ctl.meta_misses", 1);
        self.obs.trace.emit_with("ctl", "meta_miss", || {
            obs_fields![("level", meta.level), ("index", meta.index)]
        });
        if let Some(p) = self.layout.parent_of(meta) {
            self.fetch_meta(p, pinned)?;
            // The parent fetch can evict a dirty block whose writeback
            // climbs back through *this* block (a victim's parent may be
            // `meta` itself) — in that case it is resident now.
            if self.cache.lookup(addr).is_some() {
                if !pinned.contains(&addr) {
                    pinned.push(addr);
                }
                return Ok(());
            }
        }
        let bytes = self.read_meta_repaired(meta)?;
        let (_, evicted) = self
            .cache
            .insert(addr, CachedBlock::clean(meta, bytes), pinned);
        pinned.push(addr);
        if let Some(ev) = evicted {
            self.handle_eviction(ev, pinned)?;
        }
        Ok(())
    }

    /// Persists an Anubis shadow entry for the block at cache `slot`.
    /// A no-op under eager tree update (the root is always fresh, §2.5)
    /// and for the strictly-persisted levels of Triad-NVM.
    fn shadow_write(&mut self, slot: u64, meta: MetaId, bytes: &[u8; 64]) {
        if !self.config.tree_update().shadow_tracks(meta.level) {
            return;
        }
        let record = self.build_shadow_record(meta, bytes);
        let entry = encode_entry(&record, self.config.shadow_mode());
        let saddr = self.layout.shadow_slot_addr(slot);
        self.obs.metrics.inc("ctl.shadow_writes", 1);
        self.nvm_write(saddr, entry, WriteCategory::Shadow);
        // The on-chip shadow-tree registers update only while the machine
        // is alive: after the crash fuse fires, register state is frozen
        // exactly as a powered-off controller's would be.
        if !self.wpq.is_dead() {
            if let Some(tree) = &mut self.shadow_tree {
                // Lazy fold: the persisted `shadow_root` register is only
                // architecturally visible at crash capture, which refolds
                // from the (frozen) leaves — same value as an eager root.
                tree.update(slot, &entry);
            }
        }
    }

    fn build_shadow_record(&self, meta: MetaId, bytes: &[u8; 64]) -> ShadowRecord {
        let mut lsbs = [0u16; 8];
        if meta.level == 1 {
            let cb = CounterBlock::from_bytes(bytes);
            lsbs[0] = cb.major() as u16;
        } else {
            let node = TocNode::from_bytes(bytes);
            for (i, lsb) in lsbs.iter_mut().enumerate() {
                *lsb = node.counter(i) as u16;
            }
        }
        let mac = match &self.mac {
            Some(m) => {
                let addr = self.layout.meta_addr(meta);
                if meta.level == 1 {
                    m.shadow_entry_mac(addr.byte_addr(), bytes)
                } else {
                    // MAC over the counter payload only: the embedded node
                    // MAC is recomputed at writeback and would be stale.
                    let node = TocNode::from_bytes(bytes);
                    let mut payload = [0u8; 64];
                    for (i, c) in node.counters().iter().enumerate() {
                        payload[8 * i..8 * i + 8].copy_from_slice(&c.to_le_bytes());
                    }
                    m.shadow_entry_mac(addr.byte_addr(), &payload)
                }
            }
            None => 0,
        };
        ShadowRecord { meta, lsbs, mac }
    }

    /// Writes back a (dirty) block: bumps the parent counter, refreshes
    /// the block's MAC under it, and commits the block plus all its clones
    /// atomically. Shared by evictions and Osiris early writebacks.
    fn writeback_block(
        &mut self,
        meta: MetaId,
        mut bytes: [u8; 64],
        pinned: &mut Vec<LineAddr>,
    ) -> Result<[u8; 64], MemoryError> {
        let addr = self.layout.meta_addr(meta);
        // 1. Compute the bumped parent counter (anti-replay for the new
        //    MAC). The parent's own *durable* update — root register, or
        //    the cached node's shadow entry — is deferred until after the
        //    child's group is accepted into the ADR domain: verification
        //    tolerates exactly one pending bump (forward trial), so a
        //    crash between the two steps is never torn.
        let child_slot = self.layout.child_slot(meta);
        let parent_shadow = match self.layout.parent_of(meta) {
            None => None,
            Some(p) => {
                self.fetch_meta(p, pinned)?;
                let p_addr = self.layout.meta_addr(p);
                let slot = self.resident_slot(p_addr);
                let pb = self.resident_mut(p_addr);
                let mut pn = TocNode::from_bytes(&pb.data);
                pn.bump(child_slot);
                pb.data = pn.to_bytes();
                let pdata = pb.data;
                self.cache.mark_dirty(p_addr);
                Some((slot, p, pdata))
            }
        };
        let new_parent_counter = match &parent_shadow {
            None => self.root.counter(child_slot) + 1,
            Some((_, _, pbytes)) => TocNode::from_bytes(pbytes).counter(child_slot),
        };
        // 2. Refresh the MAC under the new parent counter. A leaf's MAC
        //    lives in a packed side line — its read-modify-write image
        //    joins the child's atomic group (a separate push could land
        //    without the block, tearing the leaf).
        let mut group: Vec<(LineAddr, [u8; 64], WriteCategory)> = Vec::new();
        if let Some(mac) = self.mac.clone() {
            if meta.level == 1 {
                let tag = mac.counter_block_mac(addr.byte_addr(), &bytes, new_parent_counter);
                let (line, off) = self.layout.leaf_mac_slot(meta.index);
                let (mut mbytes, outcome) = self.nvm_read(line);
                if !outcome.is_usable() {
                    return Err(MemoryError::MetadataUnverifiable {
                        meta,
                        class: MetadataClass::DataMac,
                        covered_lines: self.layout.covered_data_lines(meta),
                    });
                }
                mbytes[off..off + 8].copy_from_slice(&tag.to_le_bytes());
                group.push((line, mbytes, WriteCategory::LeafMac));
            } else {
                let mut node = TocNode::from_bytes(&bytes);
                node.set_mac(mac.tree_node_mac(
                    addr.byte_addr(),
                    node.counters(),
                    new_parent_counter,
                ));
                bytes = node.to_bytes();
            }
        } else if meta.level == 1 {
            // Timing mode still pays the leaf-MAC write traffic.
            let (line, off) = self.layout.leaf_mac_slot(meta.index);
            let (mut mbytes, outcome) = self.nvm_read(line);
            if outcome.is_usable() {
                mbytes[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
                group.push((line, mbytes, WriteCategory::LeafMac));
            }
        }
        // 3. Leaf MAC + primary + clones as one atomic WPQ group (§3.2.1).
        let extra = self
            .config
            .cloning()
            .extra_clones(meta.level, self.layout.levels());
        group.push((addr, bytes, WriteCategory::Eviction));
        for c in 1..=extra {
            group.push((self.layout.clone_addr(meta, c), bytes, WriteCategory::Clone));
        }
        self.obs.trace.emit_with("ctl", "writeback", || {
            obs_fields![
                ("level", meta.level),
                ("index", meta.index),
                ("clones", extra),
            ]
        });
        self.obs.metrics.inc("ctl.writebacks", 1);
        self.nvm_write_group(&mut group);
        // 4. Commit the parent's durable update, now that the child group
        //    is in the ADR domain. The persistent root register mutates
        //    only while the machine is alive.
        match parent_shadow {
            None => {
                if !self.wpq.is_dead() {
                    self.root.set_counter(child_slot, new_parent_counter);
                }
            }
            Some((slot, p, pbytes)) => self.shadow_write(slot, p, &pbytes),
        }
        Ok(bytes)
    }

    fn handle_eviction(
        &mut self,
        ev: Evicted,
        pinned: &mut Vec<LineAddr>,
    ) -> Result<(), MemoryError> {
        if !ev.block.is_dirty() {
            return Ok(());
        }
        self.stats.record_eviction(ev.block.meta.level);
        let meta = ev.block.meta;
        self.obs.trace.emit_with("ctl", "evict", || {
            obs_fields![("level", meta.level), ("index", meta.index)]
        });
        self.writeback_block(ev.block.meta, ev.block.data, pinned)?;
        Ok(())
    }

    // ----- page re-encryption on minor overflow -----

    fn reencrypt_page(
        &mut self,
        leaf: MetaId,
        old: &CounterBlock,
        pinned: &mut Vec<LineAddr>,
    ) -> Result<(), MemoryError> {
        let _ = pinned;
        self.stats.page_reencryptions += 1;
        self.obs.metrics.inc("ctl.page_reencryptions", 1);
        self.obs.trace.emit_with("ctl", "page_reencrypt", || {
            obs_fields![("leaf", leaf.index), ("major", old.major())]
        });
        let new_major = old.major() + 1;
        for slot in 0..COUNTERS_PER_BLOCK as usize {
            let daddr = DataAddr::new(leaf.index * COUNTERS_PER_BLOCK + slot as u64);
            let (mac_line, off) = self.layout.data_mac_slot(daddr);
            if self.functional() {
                let Ok(stored) = self.read_mac_slot(mac_line, off) else {
                    return Err(MemoryError::DataUncorrectable { addr: daddr });
                };
                if stored == 0 {
                    continue; // line never written
                }
                let line_addr = self.layout.data_line_addr(daddr);
                let (ciphertext, outcome) = self.nvm_read(line_addr);
                if !outcome.is_usable() {
                    return Err(MemoryError::DataUncorrectable { addr: daddr });
                }
                let old_counter = old.counter(slot);
                if self.data_mac_of(daddr, &ciphertext, old_counter) != stored {
                    return Err(MemoryError::IntegrityViolation { addr: daddr });
                }
                let cipher = self.functional_cipher();
                let new_counter = new_major * MINOR_LIMIT as u64;
                // Strip the old-counter pad and dress the line in the new
                // one in a single XOR pass; both keystreams come from one
                // batched eight-block AES dispatch (the pads are
                // data-independent, so the old/new chains overlap in the
                // hardware pipeline). Bit-identical to decrypt-then-encrypt.
                let (pad_old, pad_new) =
                    cipher.one_time_pads2(daddr.index() * 64, old_counter, new_counter);
                let mut new_cipher = [0u8; 64];
                for i in 0..8 {
                    let c = soteria_rt::bytes::u64_ne(&ciphertext[8 * i..8 * i + 8]);
                    let po = soteria_rt::bytes::u64_ne(&pad_old[8 * i..8 * i + 8]);
                    let pn = soteria_rt::bytes::u64_ne(&pad_new[8 * i..8 * i + 8]);
                    new_cipher[8 * i..8 * i + 8].copy_from_slice(&(c ^ po ^ pn).to_ne_bytes());
                }
                let new_mac = self.data_mac_of(daddr, &new_cipher, new_counter);
                self.nvm_write(line_addr, new_cipher, WriteCategory::Reencrypt);
                let _ = self.write_mac_slot(mac_line, off, new_mac, WriteCategory::Reencrypt);
            } else {
                // Timing mode: pay the traffic without the cryptography.
                let line_addr = self.layout.data_line_addr(daddr);
                let _ = self.nvm_read(line_addr);
                self.nvm_write(line_addr, [0; 64], WriteCategory::Reencrypt);
                let _ = self.write_mac_slot(mac_line, off, 0, WriteCategory::Reencrypt);
            }
        }
        Ok(())
    }

    /// Eager propagation: write back the updated block and every dirtied
    /// ancestor, leaf-up, stopping above `max_level` (u8::MAX = to the
    /// root).
    fn eager_propagate(
        &mut self,
        leaf: MetaId,
        max_level: u8,
        pinned: &mut Vec<LineAddr>,
    ) -> Result<(), MemoryError> {
        let mut current = Some(leaf);
        while let Some(meta) = current {
            if meta.level > max_level {
                break;
            }
            let addr = self.layout.meta_addr(meta);
            let bytes = match self.cache.peek(addr) {
                Some(blk) if blk.is_dirty() => blk.data,
                _ => break, // ancestor untouched (root bump only)
            };
            let written = self.writeback_block(meta, bytes, pinned)?;
            let blk = self.resident_mut(addr);
            blk.data = written;
            blk.slot_updates = [0; 64];
            self.cache.mark_clean(addr);
            current = self.layout.parent_of(meta);
        }
        Ok(())
    }

    // ----- public datapath -----

    fn check_bounds(&self, addr: DataAddr) -> Result<(), MemoryError> {
        if addr.index() >= self.layout.data_lines() {
            Err(MemoryError::AddressOutOfRange {
                addr,
                lines: self.layout.data_lines(),
            })
        } else {
            Ok(())
        }
    }

    /// Writes one 64-byte line at `addr` — a transaction of one write.
    ///
    /// # Errors
    ///
    /// Propagates metadata-unverifiable, uncorrectable-data and
    /// integrity-violation conditions (see [`MemoryError`]).
    pub fn write(&mut self, addr: DataAddr, data: &[u8; 64]) -> Result<(), MemoryError> {
        self.commit_writes(&[(addr, *data)]).map(|_| ())
    }

    /// Opens a [`Transaction`]: stage writes, then commit them as one
    /// atomic group. See [`Transaction`] for the durability contract.
    pub fn transaction(&mut self) -> Transaction<'_> {
        Transaction {
            ctl: self,
            writes: Vec::new(),
        }
    }

    /// Commits a group of writes atomically — **the** durability point
    /// of the controller.
    ///
    /// The atomic-and-committing contract (ROADMAP 5(b), in the style of
    /// the PSA storage-resilience API): the ciphertext lines, their data
    /// MACs, and the touched counter blocks' shadow entries enter the
    /// WPQ as **one** [`WritePendingQueue::push_atomic`] group. Because
    /// an accepted group is durable (ADR) and an unaccepted one leaves
    /// no trace, *any crash observes a prefix of committed transactions,
    /// and never a torn transaction*. Deferred maintenance (Osiris
    /// writebacks, eager propagation) runs after the commit point and
    /// only re-persists already-committed state.
    ///
    /// # Errors
    ///
    /// [`MemoryError::TransactionTooLarge`] when the staged group cannot
    /// fit the WPQ even when empty (no partial effects: the transaction
    /// may be split and retried), plus the per-write datapath errors of
    /// [`SecureMemoryController::write`].
    pub fn commit_writes(
        &mut self,
        writes: &[(DataAddr, [u8; 64])],
    ) -> Result<CommitReceipt, MemoryError> {
        for &(addr, _) in writes {
            self.check_bounds(addr)?;
        }
        self.trace.clear();
        if writes.is_empty() {
            return Ok(CommitReceipt {
                writes: 0,
                group_writes: 0,
                accepted: !self.wpq.is_dead(),
                accept_event: self.wpq.events(),
            });
        }
        self.stats.data_writes += writes.len() as u64;
        let mut pinned = std::mem::take(&mut self.scratch.pinned);
        pinned.clear();

        // Per-leaf bump plan: how many times each counter slot will bump.
        let mut planned = std::mem::take(&mut self.scratch.planned);
        planned.clear();
        for &(addr, _) in writes {
            let leaf = self.layout.counter_block_of(addr);
            let slot = self.layout.counter_slot_of(addr);
            match planned.iter_mut().find(|(m, _)| *m == leaf) {
                Some((_, bumps)) => bumps[slot] = bumps[slot].saturating_add(1),
                None => {
                    let mut bumps = [0u8; COUNTERS_PER_BLOCK as usize];
                    bumps[slot] = 1;
                    planned.push((leaf, bumps));
                }
            }
        }
        let osiris_limit = self.config.osiris_limit();
        for (_, bumps) in &planned {
            if let Some(&over) = bumps.iter().find(|&&b| b > osiris_limit) {
                return Err(MemoryError::TransactionExceedsOsirisBudget {
                    slot_bumps: over,
                    osiris_limit,
                });
            }
        }

        // Stage the transaction: leaf overlays (counter bumps) and the
        // atomic write group, without touching durable or cached state.
        //
        // The per-write chain is software-pipelined: iteration k stages
        // write k's ciphertext and MAC-line image, then computes the
        // *previous* write's data MAC and patches its 8-byte slot in the
        // already-staged image. The MAC is pure compute (no NVM access),
        // so deferring it changes neither the NVM event order nor the
        // staged bytes — but it puts write k's AES keystream and write
        // k-1's SHA compressions side by side with no data dependency,
        // so the two units overlap instead of serialising per write.
        let mut leaves = std::mem::take(&mut self.scratch.leaves);
        leaves.clear();
        let mut staged = std::mem::take(&mut self.scratch.staged);
        staged.clear();
        struct PendingTag {
            addr: DataAddr,
            ciphertext: [u8; 64],
            counter: u64,
            mac_line: LineAddr,
            off: usize,
        }
        let mut pending: Option<PendingTag> = None;
        for &(addr, data) in writes {
            let leaf = self.layout.counter_block_of(addr);
            let slot = self.layout.counter_slot_of(addr);
            let li = match leaves.iter().position(|(m, _)| *m == leaf) {
                Some(i) => i,
                None => {
                    self.fetch_meta(leaf, &mut pinned)?;
                    let leaf_addr = self.layout.meta_addr(leaf);
                    // Osiris pre-normalization: if this transaction's
                    // bumps would push a slot past the recovery trial
                    // budget, write back the *committed* (pre-transaction)
                    // leaf first — always safe, never torn.
                    if self.config.tree_update().lazy_osiris() {
                        let bumps = planned
                            .iter()
                            .find(|(m, _)| *m == leaf)
                            .map(|(_, b)| *b)
                            .unwrap_or([0; COUNTERS_PER_BLOCK as usize]);
                        let needs_wb = {
                            let blk = self.resident(leaf_addr);
                            blk.is_dirty()
                                && blk
                                    .slot_updates
                                    .iter()
                                    .zip(bumps.iter())
                                    .any(|(&u, &b)| b > 0 && u.saturating_add(b) > osiris_limit)
                        };
                        if needs_wb {
                            self.stats.osiris_writebacks += 1;
                            self.obs.metrics.inc("ctl.osiris_writebacks", 1);
                            self.obs.trace.emit_with("ctl", "osiris_writeback", || {
                                obs_fields![("leaf", leaf.index)]
                            });
                            let bytes = self.resident(leaf_addr).data;
                            let written = self.writeback_block(leaf, bytes, &mut pinned)?;
                            let blk = self.resident_mut(leaf_addr);
                            blk.data = written;
                            blk.slot_updates = [0; 64];
                            self.cache.mark_clean(leaf_addr);
                        }
                    }
                    leaves.push((leaf, self.resident(leaf_addr).data));
                    leaves.len() - 1
                }
            };
            // Bump the staged counter, handling overflow (page
            // re-encryption) first. Re-encryption rewrites committed
            // data under the old counters and is pushed pre-commit.
            let mut cb = CounterBlock::from_bytes(&leaves[li].1);
            if cb.minor(slot) + 1 == MINOR_LIMIT {
                self.reencrypt_page(leaf, &cb, &mut pinned)?;
            }
            cb.bump(slot);
            leaves[li].1 = cb.to_bytes();
            let counter = cb.counter(slot);
            // Ciphertext line.
            let line_addr = self.layout.data_line_addr(addr);
            let ciphertext = match &self.cipher {
                Some(c) => c.encrypt_line(&data, addr.index() * 64, counter),
                None => data,
            };
            stage_line(&mut staged, line_addr, ciphertext, WriteCategory::Cipher);
            // Data-MAC line: stage the line image now so later writes
            // sharing it read *through* the staged overlay; the 8-byte
            // tag slot is patched one iteration later (pipeline above).
            let (mac_line, off) = self.layout.data_mac_slot(addr);
            if !staged.iter().any(|(a, _, _)| *a == mac_line) {
                let (bytes, outcome) = self.nvm_read(mac_line);
                if !outcome.is_usable() {
                    return Err(MemoryError::DataUncorrectable { addr });
                }
                stage_line(&mut staged, mac_line, bytes, WriteCategory::DataMac);
            }
            if let Some(job) = pending.take() {
                let tag = self.data_mac_of(job.addr, &job.ciphertext, job.counter).max(1);
                // The job's MAC line was staged in the iteration that
                // created it, so the lookup always hits; patching in
                // write order keeps last-write-wins on shared slots.
                if let Some((_, bytes, _)) = staged.iter_mut().find(|(a, _, _)| *a == job.mac_line)
                {
                    bytes[job.off..job.off + 8].copy_from_slice(&tag.to_le_bytes());
                }
            }
            pending = Some(PendingTag {
                addr,
                ciphertext,
                counter,
                mac_line,
                off,
            });
        }
        // Drain the pipeline: the last write's tag is still pending.
        if let Some(job) = pending.take() {
            let tag = self.data_mac_of(job.addr, &job.ciphertext, job.counter).max(1);
            if let Some((_, bytes, _)) = staged.iter_mut().find(|(a, _, _)| *a == job.mac_line) {
                bytes[job.off..job.off + 8].copy_from_slice(&tag.to_le_bytes());
            }
        }
        // Shadow entries for the final staged leaf images ride in the
        // same group (Lazy / lazily-tracked levels only).
        let mut shadow_updates = std::mem::take(&mut self.scratch.shadow);
        shadow_updates.clear();
        if self.config.tree_update().leaf_shadowed() {
            for &(leaf, bytes) in &leaves {
                let record = self.build_shadow_record(leaf, &bytes);
                let entry = encode_entry(&record, self.config.shadow_mode());
                let slot = self.resident_slot(self.layout.meta_addr(leaf));
                self.obs.metrics.inc("ctl.shadow_writes", 1);
                stage_line(
                    &mut staged,
                    self.layout.shadow_slot_addr(slot),
                    entry,
                    WriteCategory::Shadow,
                );
                shadow_updates.push((slot, entry));
            }
        }
        if staged.len() > self.wpq.capacity() {
            return Err(MemoryError::TransactionTooLarge {
                writes: writes.len(),
                group: staged.len(),
                capacity: self.wpq.capacity(),
            });
        }

        // ----- THE COMMIT POINT -----
        let group_writes = staged.len();
        let tx_writes = writes.len() as u64;
        self.obs.trace.emit_with("ctl", "tx_commit", || {
            obs_fields![("writes", tx_writes), ("group", group_writes as u64)]
        });
        let outcome = self.nvm_write_group(&mut staged);
        let (accepted, accept_event) = match outcome {
            AcceptOutcome::Accepted { event } => (true, event),
            AcceptOutcome::Dead => (false, self.wpq.events()),
        };

        // Post-commit: fold the staged leaf images into the cache and
        // update the volatile shadow-tree registers (alive only).
        for &(leaf, bytes) in &leaves {
            let leaf_addr = self.layout.meta_addr(leaf);
            let blk = self.resident_mut(leaf_addr);
            blk.data = bytes;
            self.cache.mark_dirty(leaf_addr);
        }
        for (leaf, bumps) in &planned {
            let leaf_addr = self.layout.meta_addr(*leaf);
            let blk = self.resident_mut(leaf_addr);
            for (u, b) in blk.slot_updates.iter_mut().zip(bumps.iter()) {
                *u = u.saturating_add(*b);
            }
        }
        if !self.wpq.is_dead() {
            if let Some(tree) = &mut self.shadow_tree {
                for (slot, entry) in &shadow_updates {
                    tree.update(*slot, entry);
                }
            }
        }

        // Deferred maintenance, re-persisting committed state only. The
        // tree-update strategy decides what runs: the lazy modes bound
        // in-cache update counts (Osiris), the persisting modes climb the
        // tree up to their ceiling (the first lazy ancestor above the
        // ceiling is dirtied by the boundary writeback, and
        // writeback_block's parent update shadow-writes it — the shadow
        // gate only skips the strictly-persisted levels), and the
        // coalesced mode batches a full dirty-path flush every `period`
        // commit groups.
        let update = self.config.tree_update();
        if update.lazy_osiris() {
            for &(leaf, _) in &leaves {
                let leaf_addr = self.layout.meta_addr(leaf);
                let (do_osiris_writeback, leaf_bytes) = {
                    let blk = self.resident(leaf_addr);
                    (
                        blk.slot_updates.iter().any(|&u| u >= osiris_limit),
                        blk.data,
                    )
                };
                if do_osiris_writeback {
                    self.stats.osiris_writebacks += 1;
                    self.obs.metrics.inc("ctl.osiris_writebacks", 1);
                    self.obs.trace.emit_with("ctl", "osiris_writeback", || {
                        obs_fields![("leaf", leaf.index)]
                    });
                    let bytes = self.writeback_block(leaf, leaf_bytes, &mut pinned)?;
                    let blk = self.resident_mut(leaf_addr);
                    blk.data = bytes;
                    blk.slot_updates = [0; 64];
                    self.cache.mark_clean(leaf_addr);
                }
            }
        }
        if let Some(ceiling) = update.persist_ceiling() {
            for &(leaf, _) in &leaves {
                self.eager_propagate(leaf, ceiling, &mut pinned)?;
            }
        }
        if let Some(period) = update.flush_period() {
            self.commits_since_flush += 1;
            if self.commits_since_flush >= u64::from(period) {
                self.commits_since_flush = 0;
                self.obs.trace.emit_with("ctl", "coalesced_flush", || {
                    obs_fields![("period", u64::from(period))]
                });
                for &(leaf, _) in &leaves {
                    self.eager_propagate(leaf, u8::MAX, &mut pinned)?;
                }
            }
        }
        // Return the scratch capacity for the next commit (contents are
        // dead; an early error return simply re-allocates next time).
        self.scratch.pinned = pinned;
        self.scratch.planned = planned;
        self.scratch.leaves = leaves;
        self.scratch.staged = staged;
        self.scratch.shadow = shadow_updates;
        Ok(CommitReceipt {
            writes: writes.len(),
            group_writes,
            accepted,
            accept_event,
        })
    }

    /// Reads one 64-byte line at `addr`, verifying its integrity.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::DataUncorrectable`] on an uncorrectable ECC
    /// error in the line, [`MemoryError::IntegrityViolation`] on a MAC
    /// mismatch (tampering/replay), and metadata errors from the counter
    /// fetch path.
    pub fn read(&mut self, addr: DataAddr) -> Result<[u8; 64], MemoryError> {
        self.check_bounds(addr)?;
        self.trace.clear();
        self.stats.data_reads += 1;
        let mut pinned = Vec::new();
        let leaf = self.layout.counter_block_of(addr);
        let slot = self.layout.counter_slot_of(addr);
        self.fetch_meta(leaf, &mut pinned)?;
        let leaf_addr = self.layout.meta_addr(leaf);
        let counter =
            CounterBlock::from_bytes(&self.resident(leaf_addr).data).counter(slot);

        let line_addr = self.layout.data_line_addr(addr);
        let (ciphertext, outcome) = self.nvm_read(line_addr);
        if !outcome.is_usable() {
            self.stats.data_ue += 1;
            return Err(MemoryError::DataUncorrectable { addr });
        }
        let (mac_line, off) = self.layout.data_mac_slot(addr);
        let Ok(stored) = self.read_mac_slot(mac_line, off) else {
            self.stats.data_ue += 1;
            return Err(MemoryError::DataUncorrectable { addr });
        };
        if self.functional() {
            if stored == 0 {
                // Never written: defined to read as zeroes.
                return Ok([0u8; 64]);
            }
            let expected = self.data_mac_of(addr, &ciphertext, counter).max(1);
            if expected == stored {
                return Ok(self
                    .functional_cipher()
                    .decrypt_line(&ciphertext, addr.index() * 64, counter));
            }
            // Crash staleness: the ciphertext + MAC committed atomically,
            // but under Eager/Triad the leaf carries no shadow entry, so
            // a crash between the commit and the eager writeback leaves
            // the durable counter lagging the data by up to
            // `osiris_limit` bumps. Trials only go *forward* — replayed
            // (older) data can never match — so this cannot weaken
            // integrity; a match folds the missing bumps back into the
            // cached leaf. Lazy mode commits the shadow entry in the
            // same atomic group and needs no trials: there a mismatch
            // stays an integrity violation (Fig. 8 loss accounting).
            if self.config.tree_update().leaf_shadowed() {
                return Err(MemoryError::IntegrityViolation { addr });
            }
            let cb = CounterBlock::from_bytes(&self.resident(leaf_addr).data);
            let headroom = (MINOR_LIMIT - cb.minor(slot)) as u64;
            for t in 1..=u64::from(self.config.osiris_limit()).min(headroom.saturating_sub(1)) {
                let trial = counter + t;
                if self.data_mac_of(addr, &ciphertext, trial).max(1) == stored {
                    self.stats.forward_repairs += 1;
                    self.obs.metrics.inc("ctl.forward_repairs", 1);
                    self.obs.trace.emit_with("ctl", "counter_forward_repair", || {
                        obs_fields![("line", addr.index()), ("trials", t)]
                    });
                    let blk = self.resident_mut(leaf_addr);
                    let mut cb = CounterBlock::from_bytes(&blk.data);
                    for _ in 0..t {
                        cb.bump(slot);
                    }
                    blk.data = cb.to_bytes();
                    blk.slot_updates[slot] = blk.slot_updates[slot].saturating_add(t as u8);
                    self.cache.mark_dirty(leaf_addr);
                    return Ok(self
                        .functional_cipher()
                        .decrypt_line(&ciphertext, addr.index() * 64, trial));
                }
            }
            Err(MemoryError::IntegrityViolation { addr })
        } else {
            Ok([0u8; 64])
        }
    }

    /// Writes back every dirty metadata block and drains the WPQ — a
    /// clean shutdown after which recovery is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates writeback failures.
    pub fn persist_all(&mut self) -> Result<(), MemoryError> {
        self.trace.clear();
        // Writing back a child dirties its parent; iterate to fixpoint,
        // lowest levels first.
        loop {
            // Lowest level first; min_by_key keeps the first minimum in
            // iteration order, matching the old stable sort's front. Not a
            // `while let`: in edition 2021 the iterator temporary would
            // borrow the cache across the `&mut self` calls in the body.
            let next = self
                .cache
                .dirty_addrs()
                .min_by_key(|a| self.cache.peek(*a).map(|b| b.meta.level).unwrap_or(u8::MAX));
            let Some(addr) = next else {
                break;
            };
            let (meta, bytes) = {
                let blk = self.resident(addr);
                (blk.meta, blk.data)
            };
            self.obs.trace.emit_with("ctl", "persist_block", || {
                obs_fields![("level", meta.level), ("index", meta.index)]
            });
            let mut pinned = vec![addr];
            let written = self.writeback_block(meta, bytes, &mut pinned)?;
            let blk = self.resident_mut(addr);
            blk.data = written;
            blk.slot_updates = [0; 64];
            self.cache.mark_clean(addr);
        }
        let pending = self.wpq.len();
        self.wpq.flush(&mut self.device);
        self.obs.trace.emit_with("ctl", "wpq_flush", || {
            obs_fields![("drained", pending)]
        });
        Ok(())
    }

    /// Rotates the memory encryption and MAC keys (§2.7): decrypts every
    /// written line under the old keys, resets all counters, re-encrypts
    /// and re-MACs everything under the new keys, and clears the shadow
    /// state. This is the "very lengthy and expensive process that can
    /// take hours" the paper invokes — the returned report quantifies it.
    ///
    /// Functional fidelity only.
    ///
    /// # Errors
    ///
    /// Propagates data/metadata faults encountered while re-reading the
    /// old image (a UE during rotation loses that line).
    ///
    /// # Panics
    ///
    /// Panics in [`Fidelity::Timing`] mode.
    pub fn rotate_keys(
        &mut self,
        new_encryption: soteria_crypto::EncryptionKey,
        new_mac: soteria_crypto::MacKey,
    ) -> Result<KeyRotationReport, MemoryError> {
        assert!(
            self.functional(),
            "key rotation requires Functional fidelity"
        );
        // Quiesce: all metadata durable and coherent before the walk.
        self.persist_all()?;
        let reads_before = self.stats.nvm_reads;
        let writes_before = self.stats.nvm_writes;

        let old_cipher = self.functional_cipher().clone();
        let old_mac = self.functional_mac().clone();
        let new_cipher = CounterModeCipher::new(new_encryption);
        let new_mac_engine = MacEngine::new(new_mac);

        let mut lines_reencrypted = 0u64;
        for leaf_index in 0..self.layout.level_count(1) {
            // Read the (durable) leaf directly; skip untouched pages.
            let leaf = MetaId::new(1, leaf_index);
            let (leaf_bytes, outcome) = self.nvm_read(self.layout.meta_addr(leaf));
            if !outcome.is_usable() {
                return Err(MemoryError::MetadataUnverifiable {
                    meta: leaf,
                    class: MetadataClass::CounterBlock,
                    covered_lines: self.layout.covered_data_lines(leaf),
                });
            }
            let cb = CounterBlock::from_bytes(&leaf_bytes);
            for slot in 0..COUNTERS_PER_BLOCK as usize {
                let daddr = DataAddr::new(leaf_index * COUNTERS_PER_BLOCK + slot as u64);
                if daddr.index() >= self.layout.data_lines() {
                    break;
                }
                let (mac_line, off) = self.layout.data_mac_slot(daddr);
                let Ok(stored) = self.read_mac_slot(mac_line, off) else {
                    return Err(MemoryError::DataUncorrectable { addr: daddr });
                };
                if stored == 0 {
                    continue; // never written
                }
                let line_addr = self.layout.data_line_addr(daddr);
                let (ciphertext, co) = self.nvm_read(line_addr);
                if !co.is_usable() {
                    return Err(MemoryError::DataUncorrectable { addr: daddr });
                }
                let counter = cb.counter(slot);
                if old_mac
                    .data_mac(daddr.index() * 64, &ciphertext, counter)
                    .max(1)
                    != stored
                {
                    return Err(MemoryError::IntegrityViolation { addr: daddr });
                }
                let plain = old_cipher.decrypt_line(&ciphertext, daddr.index() * 64, counter);
                // Fresh counters start at zero under the new key: the new
                // key guarantees pad uniqueness across the rotation.
                let new_ct = new_cipher.encrypt_line(&plain, daddr.index() * 64, 0);
                let tag = new_mac_engine
                    .data_mac(daddr.index() * 64, &new_ct, 0)
                    .max(1);
                self.nvm_write(line_addr, new_ct, WriteCategory::Reencrypt);
                self.write_mac_slot(mac_line, off, tag, WriteCategory::Reencrypt)
                    .map_err(|()| MemoryError::DataUncorrectable { addr: daddr })?;
                lines_reencrypted += 1;
            }
        }
        // Reset the whole metadata state to fresh-under-the-new-key: zero
        // counters/nodes, vacant shadow, zero root.
        let all_meta: Vec<MetaId> = self.layout.iter_meta().collect();
        for meta in all_meta {
            self.nvm_write(
                self.layout.meta_addr(meta),
                [0u8; 64],
                WriteCategory::Reencrypt,
            );
            let extra = self
                .config
                .cloning()
                .extra_clones(meta.level, self.layout.levels());
            for c in 1..=extra {
                self.nvm_write(
                    self.layout.clone_addr(meta, c),
                    [0u8; 64],
                    WriteCategory::Reencrypt,
                );
            }
            if meta.level == 1 {
                let (line, off) = self.layout.leaf_mac_slot(meta.index);
                let _ = self.write_mac_slot(line, off, 0, WriteCategory::Reencrypt);
            }
        }
        for slot in 0..self.layout.shadow_slots() {
            self.nvm_write(
                self.layout.shadow_slot_addr(slot),
                crate::shadow::vacant_entry(),
                WriteCategory::Reencrypt,
            );
        }
        self.cache.clear();
        self.root = TocNode::new();
        if let Some(tree) = &mut self.shadow_tree {
            *tree = ShadowTree::new(self.layout.shadow_slots());
            self.shadow_root = tree.root();
        }
        self.cipher = Some(new_cipher);
        self.mac = Some(new_mac_engine);
        self.config.set_keys(new_encryption, new_mac);
        self.wpq.flush(&mut self.device);

        let reads = self.stats.nvm_reads - reads_before;
        let writes = self.stats.nvm_writes - writes_before;
        self.obs.trace.emit_with("ctl", "key_rotation", || {
            obs_fields![
                ("lines_reencrypted", lines_reencrypted),
                ("nvm_reads", reads),
                ("nvm_writes", writes),
            ]
        });
        Ok(KeyRotationReport {
            lines_reencrypted,
            nvm_reads: reads,
            nvm_writes: writes,
        })
    }

    /// Simulates a sudden power loss: WPQ contents persist (ADR), all
    /// volatile state (metadata cache, on-chip shadow-tree nodes) is lost,
    /// and only the persistent register file (ToC root, shadow root)
    /// survives. Returns the crash image to [`crate::recovery::recover`].
    pub fn crash(mut self) -> crate::recovery::CrashImage {
        let pending = self.wpq.len();
        let drains = self.wpq.drains();
        let events = self.wpq.events();
        self.obs.trace.emit_with("ctl", "crash", || {
            obs_fields![
                ("adr_drained", pending),
                ("drains_at_crash", drains),
                ("events_at_crash", events),
            ]
        });
        self.wpq.flush(&mut self.device);
        let journal = self.wpq.take_journal();
        // Fold the lazily-maintained shadow tree into the persistent root
        // register. The leaves froze when (if) the crash fuse fired, so
        // this equals the root an eagerly-updated register would hold.
        if let Some(tree) = &mut self.shadow_tree {
            self.shadow_root = tree.root();
        }
        crate::recovery::CrashImage::new(self.config, self.device, self.root, self.shadow_root)
            .with_obs(self.obs)
            .with_wpq_journal(journal)
    }

    // ----- crash-consistency instrumentation (rt::crashck adapters) -----

    /// Arms the WPQ crash fuse: every durable side effect stops after
    /// `event` accept/stall-drain steps complete (`0` = dead from the
    /// start). See [`WritePendingQueue::arm_crash_at_event`]. The
    /// controller keeps executing — a dead machine's writes are simply
    /// never issued — so a crash-point sweep can run the full script and
    /// then [`SecureMemoryController::crash`].
    pub fn arm_crash_at_event(&mut self, event: u64) {
        self.wpq.arm_crash_at_event(event);
    }

    /// The WPQ event clock (accepts + stall drains). Crash points are
    /// `0..=wpq_events()`.
    pub fn wpq_events(&self) -> u64 {
        self.wpq.events()
    }

    /// `true` once an armed crash fuse has fired.
    pub fn wpq_is_dead(&self) -> bool {
        self.wpq.is_dead()
    }

    /// Starts journaling WPQ accepts/drains for replay against the pure
    /// queue model in `soteria_rt::crashck`. The journal travels with
    /// the [`crate::recovery::CrashImage`].
    pub fn enable_wpq_journal(&mut self) {
        self.wpq.enable_journal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clone::CloningPolicy;

    fn controller(policy: CloningPolicy) -> SecureMemoryController {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 20) // 1 MiB: 3-level tree
            .metadata_cache(8 * 1024, 4)
            .cloning(policy)
            .build()
            .unwrap();
        SecureMemoryController::new(config)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut c = controller(CloningPolicy::None);
        let data: [u8; 64] = core::array::from_fn(|i| i as u8);
        c.write(DataAddr::new(10), &data).unwrap();
        assert_eq!(c.read(DataAddr::new(10)).unwrap(), data);
    }

    #[test]
    fn unwritten_reads_zero() {
        let mut c = controller(CloningPolicy::None);
        assert_eq!(c.read(DataAddr::new(99)).unwrap(), [0u8; 64]);
    }

    #[test]
    fn data_is_encrypted_at_rest() {
        let mut c = controller(CloningPolicy::None);
        let data = [0xabu8; 64];
        c.write(DataAddr::new(0), &data).unwrap();
        c.persist_all().unwrap();
        let (raw, _) = c.device_mut().read_line(LineAddr::new(0));
        assert_ne!(raw, data, "plaintext must never reach the device");
    }

    #[test]
    fn rewrites_change_ciphertext() {
        // Counter-mode freshness: same plaintext twice gives different
        // ciphertext because the minor counter advanced.
        let mut c = controller(CloningPolicy::None);
        let data = [0x11u8; 64];
        c.write(DataAddr::new(5), &data).unwrap();
        c.persist_all().unwrap();
        let (raw1, _) = c.device_mut().read_line(LineAddr::new(5));
        c.write(DataAddr::new(5), &data).unwrap();
        c.persist_all().unwrap();
        let (raw2, _) = c.device_mut().read_line(LineAddr::new(5));
        assert_ne!(raw1, raw2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = controller(CloningPolicy::None);
        let lines = c.layout().data_lines();
        assert!(matches!(
            c.read(DataAddr::new(lines)),
            Err(MemoryError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn tampered_data_detected() {
        let mut c = controller(CloningPolicy::None);
        c.write(DataAddr::new(3), &[7u8; 64]).unwrap();
        c.persist_all().unwrap();
        // Overwrite the ciphertext behind the controller's back.
        c.device_mut().write_line(LineAddr::new(3), &[0u8; 64]);
        assert!(matches!(
            c.read(DataAddr::new(3)),
            Err(MemoryError::IntegrityViolation { .. })
        ));
    }

    #[test]
    fn spliced_data_detected() {
        // Copy line A's ciphertext over line B: the address-bound MAC must
        // catch the splice.
        let mut c = controller(CloningPolicy::None);
        c.write(DataAddr::new(1), &[1u8; 64]).unwrap();
        c.write(DataAddr::new(2), &[2u8; 64]).unwrap();
        c.persist_all().unwrap();
        let (a, _) = c.device_mut().read_line(LineAddr::new(1));
        c.device_mut().write_line(LineAddr::new(2), &a);
        assert!(c.read(DataAddr::new(2)).is_err());
    }

    #[test]
    fn three_writes_per_store() {
        // §3.2.1: cipher + data MAC + shadow log per store (steady state:
        // one write per counter slot, so no Osiris writebacks, and a
        // working set small enough to avoid evictions).
        let mut c = controller(CloningPolicy::None);
        for i in 0..50 {
            c.write(DataAddr::new(i * 64), &[i as u8; 64]).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.writes.cipher, 50);
        assert_eq!(s.writes.data_mac, 50);
        assert_eq!(s.writes.shadow, 50);
    }

    #[test]
    fn eviction_writes_clones_for_src() {
        let mut c = controller(CloningPolicy::Relaxed);
        // Touch enough distinct counter blocks to overflow the 128-line
        // metadata cache and force evictions.
        let lines = c.layout().data_lines();
        for i in (0..lines).step_by(64) {
            c.write(DataAddr::new(i), &[1u8; 64]).unwrap();
        }
        let s = c.stats();
        assert!(
            s.total_evictions() > 0,
            "working set must overflow the cache"
        );
        assert!(
            s.writes.clone >= s.writes.eviction,
            "SRC: >= one clone per eviction"
        );
    }

    #[test]
    fn baseline_never_writes_clones() {
        let mut c = controller(CloningPolicy::None);
        let lines = c.layout().data_lines();
        for i in (0..lines).step_by(64) {
            c.write(DataAddr::new(i), &[1u8; 64]).unwrap();
        }
        assert!(c.stats().total_evictions() > 0);
        assert_eq!(c.stats().writes.clone, 0);
    }

    #[test]
    fn osiris_limit_forces_early_writeback() {
        let mut c = controller(CloningPolicy::None);
        // 5 writes to the same line with osiris_limit = 4 (default).
        for _ in 0..5 {
            c.write(DataAddr::new(0), &[9u8; 64]).unwrap();
        }
        assert!(c.stats().osiris_writebacks >= 1);
    }

    #[test]
    fn minor_overflow_reencrypts_page() {
        let mut c = controller(CloningPolicy::None);
        let data = [3u8; 64];
        // 127 bumps reach the 7-bit limit; the 128th write re-encrypts.
        for _ in 0..200 {
            c.write(DataAddr::new(0), &data).unwrap();
        }
        assert!(c.stats().page_reencryptions >= 1);
        assert_eq!(c.read(DataAddr::new(0)).unwrap(), data);
    }

    #[test]
    fn persist_all_reaches_fixpoint() {
        let mut c = controller(CloningPolicy::Relaxed);
        for i in 0..500 {
            c.write(
                DataAddr::new((i * 64) % c.layout().data_lines()),
                &[i as u8; 64],
            )
            .unwrap();
        }
        c.persist_all().unwrap();
        assert!(c.cache.dirty_addrs().next().is_none());
        // Everything still readable afterwards.
        assert!(c.read(DataAddr::new(0)).is_ok());
    }

    #[test]
    fn trace_captures_accesses() {
        let mut c = controller(CloningPolicy::None);
        c.write(DataAddr::new(0), &[1u8; 64]).unwrap();
        let has_write = c.last_trace().iter().any(|(_, k)| *k == AccessKind::Write);
        assert!(has_write);
        c.read(DataAddr::new(0)).unwrap();
        let has_read = c.last_trace().iter().any(|(_, k)| *k == AccessKind::Read);
        assert!(has_read);
    }

    #[test]
    fn timing_mode_counts_without_crypto() {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(1 << 20)
            .metadata_cache(8 * 1024, 4)
            .fidelity(Fidelity::Timing)
            .cloning(CloningPolicy::Aggressive)
            .build()
            .unwrap();
        let mut c = SecureMemoryController::new(config);
        for i in 0..1000u64 {
            c.write(
                DataAddr::new((i * 64) % c.layout().data_lines()),
                &[0u8; 64],
            )
            .unwrap();
        }
        let s = c.stats();
        assert_eq!(s.data_writes, 1000);
        assert!(s.writes.cipher == 1000 && s.writes.shadow >= 1000);
        assert!(s.total_evictions() > 0);
        assert!(s.writes.clone > 0);
    }
}
