//! End-to-end crash/recovery tests for the secure memory controller:
//! Anubis shadow restore, Osiris counter trials, and Soteria clone repair
//! across a modeled power loss.

use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::{DataAddr, MemoryError, SecureMemoryConfig, SecureMemoryController};
use soteria_nvm::fault::{FaultFootprint, FaultKind, FaultRecord};
use soteria_nvm::LineAddr;

fn controller(policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20) // 1 MiB, 3-level tree
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn pattern(i: u64) -> [u8; 64] {
    core::array::from_fn(|j| (i as u8).wrapping_mul(31).wrapping_add(j as u8))
}

#[test]
fn clean_shutdown_then_recover() {
    let mut c = controller(CloningPolicy::None);
    for i in 0..32u64 {
        c.write(DataAddr::new(i * 17 % 1024), &pattern(i)).unwrap();
    }
    c.persist_all().unwrap();
    let (mut c, report) = recover(c.crash());
    assert!(report.shadow_root_intact);
    assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    for i in 0..32u64 {
        assert_eq!(
            c.read(DataAddr::new(i * 17 % 1024)).unwrap(),
            pattern(i),
            "line {i}"
        );
    }
}

#[test]
fn dirty_crash_recovers_lost_counter_updates() {
    // Crash WITHOUT persist_all: counter updates live only in the cache +
    // shadow table. Osiris trials must find the advanced minors.
    let mut c = controller(CloningPolicy::None);
    for i in 0..8u64 {
        c.write(DataAddr::new(i), &pattern(i)).unwrap();
    }
    // A couple of repeat writes so some minors advanced more than once.
    c.write(DataAddr::new(0), &pattern(100)).unwrap();
    c.write(DataAddr::new(1), &pattern(101)).unwrap();
    let (mut c, report) = recover(c.crash());
    assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    assert!(report.blocks_restored > 0);
    assert!(
        report.counters_recovered > 0,
        "dirty minors must have needed Osiris trials: {report:?}"
    );
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), pattern(100));
    assert_eq!(c.read(DataAddr::new(1)).unwrap(), pattern(101));
    for i in 2..8u64 {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), pattern(i));
    }
}

#[test]
fn dirty_crash_with_deep_tree_activity() {
    // Touch enough distinct pages to force metadata evictions (dirty tree
    // nodes), then crash mid-flight.
    let mut c = controller(CloningPolicy::None);
    let lines = c.layout().data_lines();
    for i in (0..lines).step_by(64) {
        c.write(DataAddr::new(i), &pattern(i)).unwrap();
    }
    assert!(c.stats().total_evictions() > 0);
    let (mut c, report) = recover(c.crash());
    assert!(
        report.is_complete(),
        "unverifiable: {:?}",
        report.unverifiable
    );
    for i in (0..lines).step_by(64) {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), pattern(i), "line {i}");
    }
}

#[test]
fn fault_while_down_baseline_loses_metadata() {
    let mut c = controller(CloningPolicy::None);
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 64), &pattern(i)).unwrap();
    }
    c.persist_all().unwrap();
    let layout = c.layout().clone();
    let mut image = c.crash();
    // Two-chip fault on a leaf counter block while powered down.
    let leaf = soteria::MetaId::new(1, 0);
    let target = layout.meta_addr(leaf);
    let loc = image.device_mut().geometry().locate(target);
    for chip in [2u32, 11] {
        let g = *image.device_mut().geometry();
        image.device_mut().inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 0,
            },
            FaultKind::Permanent,
        ));
    }
    let (mut c, report) = recover(image);
    // The leaf was tracked in the shadow table and its memory copy is
    // gone: baseline cannot reconstruct it.
    assert!(!report.is_complete(), "baseline should lose the leaf");
    // Reading data under the lost leaf fails; unrelated data survives.
    assert!(matches!(
        c.read(DataAddr::new(0)),
        Err(MemoryError::MetadataUnverifiable { .. })
    ));
    assert_eq!(c.read(DataAddr::new(63 * 64)).unwrap(), pattern(63));
}

#[test]
fn fault_while_down_src_repairs_from_clone() {
    let mut c = controller(CloningPolicy::Relaxed);
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 64), &pattern(i)).unwrap();
    }
    c.persist_all().unwrap();
    let layout = c.layout().clone();
    let mut image = c.crash();
    let leaf = soteria::MetaId::new(1, 0);
    let target = layout.meta_addr(leaf);
    let loc = image.device_mut().geometry().locate(target);
    for chip in [2u32, 11] {
        let g = *image.device_mut().geometry();
        image.device_mut().inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 0,
            },
            FaultKind::Permanent,
        ));
    }
    let (mut c, report) = recover(image);
    assert!(
        report.is_complete(),
        "SRC must repair: {:?}",
        report.unverifiable
    );
    assert!(report.clone_repairs > 0);
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), pattern(0));
}

#[test]
fn runtime_metadata_ue_repaired_from_clone() {
    // Fault strikes at runtime (not across a crash): the Fig. 9 path.
    let mut c = controller(CloningPolicy::Relaxed);
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 64), &pattern(i)).unwrap();
    }
    c.persist_all().unwrap();
    // Evict everything from the metadata cache by... there is no direct
    // flush API; persist_all leaves blocks resident but clean. Corrupt the
    // primary copy of a leaf in NVM, then force a re-fetch by clearing the
    // cache through capacity pressure: touch many other pages.
    let layout = c.layout().clone();
    let leaf = soteria::MetaId::new(1, 0);
    let target = layout.meta_addr(leaf);
    let loc = c.device_mut().geometry().locate(target);
    for chip in [0u32, 9] {
        let g = *c.device_mut().geometry();
        c.device_mut().inject_fault(FaultRecord::on_chip(
            &g,
            chip,
            FaultFootprint::SingleWord {
                bank: loc.bank,
                row: loc.row,
                col: loc.col,
                beat: 1,
            },
            FaultKind::Permanent,
        ));
    }
    let lines = layout.data_lines();
    for i in (0..lines).step_by(64) {
        let _ = c.read(DataAddr::new(i));
    }
    // The leaf must have been re-fetched at some point and repaired.
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), pattern(0));
    assert!(c.stats().clone_repairs > 0, "stats: {:?}", c.stats());
}

#[test]
fn replayed_metadata_detected_without_clones() {
    // Write, persist, snapshot a leaf, write more, persist, replay the old
    // leaf: the bumped parent counter must invalidate the stale MAC, and
    // with no clones the block is unverifiable (attack detected).
    let mut c = controller(CloningPolicy::None);
    c.write(DataAddr::new(0), &pattern(1)).unwrap();
    c.persist_all().unwrap();
    let layout = c.layout().clone();
    let leaf_addr = layout.meta_addr(soteria::MetaId::new(1, 0));
    let (old_leaf, _) = c.device_mut().read_line(leaf_addr);
    let (old_mac_line, _) = c.device_mut().read_line(layout.leaf_mac_slot(0).0);
    c.write(DataAddr::new(0), &pattern(2)).unwrap();
    c.persist_all().unwrap();
    // Replay both the leaf and its (stale) MAC.
    c.device_mut().write_line(leaf_addr, &old_leaf);
    c.device_mut()
        .write_line(layout.leaf_mac_slot(0).0, &old_mac_line);
    // Force re-fetch through cache pressure.
    let lines = layout.data_lines();
    for i in (64..lines).step_by(64) {
        let _ = c.read(DataAddr::new(i));
    }
    let r = c.read(DataAddr::new(0));
    assert!(
        matches!(r, Err(MemoryError::MetadataUnverifiable { .. }))
            || matches!(r, Err(MemoryError::IntegrityViolation { .. })),
        "replay must be detected, got {r:?}"
    );
}

#[test]
fn wpq_contents_survive_crash() {
    // A write whose cipher text was still in the WPQ at crash time must be
    // durable (ADR domain).
    let mut c = controller(CloningPolicy::None);
    c.write(DataAddr::new(5), &pattern(5)).unwrap();
    // No persist_all: WPQ may still hold the ciphertext.
    let (mut c, report) = recover(c.crash());
    assert!(report.is_complete());
    assert_eq!(c.read(DataAddr::new(5)).unwrap(), pattern(5));
}

#[test]
fn timing_mode_crash_panics() {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .fidelity(soteria::Fidelity::Timing)
        .build()
        .unwrap();
    let mut c = SecureMemoryController::new(config);
    c.write(DataAddr::new(0), &[0u8; 64]).unwrap();
    let image = c.crash();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| recover(image)));
    assert!(result.is_err(), "Timing-mode recovery must be rejected");
}

#[test]
fn tampered_shadow_region_flagged() {
    let mut c = controller(CloningPolicy::None);
    c.write(DataAddr::new(0), &pattern(0)).unwrap();
    let layout = c.layout().clone();
    let slot0 = layout.shadow_slot_addr(0);
    let mut image = c.crash();
    // Flip one byte of a shadow line behind recovery's back.
    let (mut bytes, _) = image.device_mut().read_line(slot0);
    bytes[40] ^= 0xff;
    image.device_mut().write_line(slot0, &bytes);
    let (_, report) = recover(image);
    assert!(
        !report.shadow_root_intact,
        "shadow tamper must be visible in the root"
    );
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let mut c = controller(CloningPolicy::Relaxed);
    for round in 0..3u64 {
        for i in 0..16u64 {
            c.write(DataAddr::new(i * 64 + round), &pattern(round * 100 + i))
                .unwrap();
        }
        let (nc, report) = recover(c.crash());
        assert!(
            report.is_complete(),
            "round {round}: {:?}",
            report.unverifiable
        );
        c = nc;
        for i in 0..16u64 {
            assert_eq!(
                c.read(DataAddr::new(i * 64 + round)).unwrap(),
                pattern(round * 100 + i),
                "round {round} line {i}"
            );
        }
    }
}

#[test]
fn leaf_addr_helper_is_consistent() {
    // Guard for the tests above: leaf 0 covers data lines 0..64.
    let c = controller(CloningPolicy::None);
    let leaf = c.layout().counter_block_of(DataAddr::new(0));
    assert_eq!(leaf, soteria::MetaId::new(1, 0));
    let _ = LineAddr::new(0);
}
