//! Tests for the eager tree-update ablation (§2.5 / Table 1): every store
//! propagates to the root, the root is always fresh, recovery is trivial,
//! and the write amplification is why nobody ships it.

use soteria::clone::CloningPolicy;
use soteria::config::TreeUpdate;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

fn controller(update: TreeUpdate, policy: CloningPolicy) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .tree_update(update)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

#[test]
fn eager_roundtrip() {
    let mut c = controller(TreeUpdate::Eager, CloningPolicy::None);
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 17 % 1024), &[i as u8; 64])
            .unwrap();
    }
    for i in 0..64u64 {
        assert_eq!(c.read(DataAddr::new(i * 17 % 1024)).unwrap(), [i as u8; 64]);
    }
}

#[test]
fn eager_writes_far_more_than_lazy() {
    let run = |update| {
        let mut c = controller(update, CloningPolicy::None);
        for i in 0..500u64 {
            c.write(DataAddr::new((i * 64) % 1024), &[1u8; 64]).unwrap();
        }
        c.stats().nvm_writes
    };
    let lazy = run(TreeUpdate::Lazy);
    let eager = run(TreeUpdate::Eager);
    assert!(
        eager as f64 > 1.5 * lazy as f64,
        "eager {eager} vs lazy {lazy}: the 'extreme slowdown' of §2.5"
    );
}

#[test]
fn eager_skips_shadow_writes() {
    let mut c = controller(TreeUpdate::Eager, CloningPolicy::None);
    for i in 0..100u64 {
        c.write(DataAddr::new(i), &[2u8; 64]).unwrap();
    }
    assert_eq!(
        c.stats().writes.shadow,
        0,
        "eager mode needs no Anubis tracking"
    );
    let mut c = controller(TreeUpdate::Lazy, CloningPolicy::None);
    for i in 0..100u64 {
        c.write(DataAddr::new(i), &[2u8; 64]).unwrap();
    }
    assert!(c.stats().writes.shadow >= 100);
}

#[test]
fn eager_crash_needs_no_reconstruction() {
    let mut c = controller(TreeUpdate::Eager, CloningPolicy::None);
    for i in 0..32u64 {
        c.write(DataAddr::new(i * 64), &[i as u8; 64]).unwrap();
    }
    // No persist_all: with eager update the NVM copy is already coherent.
    let (mut c, report) = recover(c.crash());
    assert!(report.is_complete());
    assert_eq!(
        report.counters_recovered, 0,
        "no Osiris trials should be needed: {report:?}"
    );
    for i in 0..32u64 {
        assert_eq!(
            c.read(DataAddr::new(i * 64)).unwrap(),
            [i as u8; 64],
            "line {i}"
        );
    }
}

#[test]
fn eager_clones_still_written() {
    let mut c = controller(TreeUpdate::Eager, CloningPolicy::Relaxed);
    for i in 0..50u64 {
        c.write(DataAddr::new(i * 64), &[3u8; 64]).unwrap();
    }
    assert!(
        c.stats().writes.clone > 0,
        "every writeback clones under SRC"
    );
}
