//! Fig. 8 quantified: Soteria's duplicated shadow entries survive
//! partial-line corruption of the shadow region that defeats the plain
//! Anubis format — measured end-to-end through crash recovery.

use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::shadow::ShadowMode;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

fn run_with_shadow_corruption(mode: ShadowMode) -> (usize, usize) {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::Relaxed)
        .shadow_mode(mode)
        .build()
        .unwrap();
    let mut c = SecureMemoryController::new(config);
    // Dirty state that recovery must reconstruct from the shadow table.
    let lines: Vec<u64> = (0..48u64).map(|i| i * 64 % 16384).collect();
    for (i, &line) in lines.iter().enumerate() {
        c.write(DataAddr::new(line), &[i as u8; 64]).unwrap();
    }
    let layout = c.layout().clone();
    let mut image = c.crash();
    // Corrupt the FIRST HALF of every shadow line: the damage an
    // uncorrectable partial-line error does to ECC codewords 0-1 while
    // codewords 2-3 (bytes 32..64, the duplicate copy) survive.
    for slot in 0..layout.shadow_slots() {
        let addr = layout.shadow_slot_addr(slot);
        let (mut bytes, _) = image.device_mut().read_line(addr);
        if bytes.iter().all(|&b| b == 0) {
            continue; // vacant
        }
        for b in &mut bytes[..32] {
            *b = b.wrapping_add(0x3b) ^ 0x5c;
        }
        image.device_mut().write_line(addr, &bytes);
    }
    let (mut c, _report) = recover(image);
    // Count surviving lines by actually reading them back.
    let mut intact = 0;
    let mut lost = 0;
    for (i, &line) in lines.iter().enumerate() {
        match c.read(DataAddr::new(line)) {
            Ok(data) if data == [i as u8; 64] => intact += 1,
            _ => lost += 1,
        }
    }
    (intact, lost)
}

#[test]
fn duplicated_entries_survive_half_line_corruption() {
    let (intact, lost) = run_with_shadow_corruption(ShadowMode::Duplicated);
    assert_eq!(
        lost, 0,
        "duplicate copy must recover everything ({intact} intact)"
    );
}

#[test]
fn plain_entries_lose_data_under_the_same_corruption() {
    let (intact, lost) = run_with_shadow_corruption(ShadowMode::Plain);
    assert!(
        lost > 0,
        "the single-copy format cannot survive first-half corruption \
         (intact {intact}, lost {lost})"
    );
}

#[test]
fn second_half_corruption_also_survived_by_duplicates() {
    // Symmetric case: trash bytes 32..64 instead.
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::None)
        .shadow_mode(ShadowMode::Duplicated)
        .build()
        .unwrap();
    let mut c = SecureMemoryController::new(config);
    for i in 0..16u64 {
        c.write(DataAddr::new(i), &[i as u8; 64]).unwrap();
    }
    let layout = c.layout().clone();
    let mut image = c.crash();
    for slot in 0..layout.shadow_slots() {
        let addr = layout.shadow_slot_addr(slot);
        let (mut bytes, _) = image.device_mut().read_line(addr);
        if bytes.iter().all(|&b| b == 0) {
            continue;
        }
        for b in &mut bytes[32..] {
            *b ^= 0xa7;
        }
        image.device_mut().write_line(addr, &bytes);
    }
    let (mut c, _) = recover(image);
    for i in 0..16u64 {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), [i as u8; 64], "line {i}");
    }
}
