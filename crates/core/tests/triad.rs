//! Triad-NVM tests (reference [5] / Table 1's "persistence scheme" axis):
//! strictly persist the tree up to N levels, stay lazy above.

use soteria::clone::CloningPolicy;
use soteria::config::TreeUpdate;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

fn controller(update: TreeUpdate) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::Relaxed)
        .tree_update(update)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn exercise(c: &mut SecureMemoryController) {
    for round in 0..3u64 {
        for i in (0..c.layout().data_lines()).step_by(256) {
            c.write(DataAddr::new(i), &[round as u8; 64]).unwrap();
        }
    }
}

#[test]
fn triad_roundtrip_and_recovery() {
    for n in 1..=3u8 {
        let mut c = controller(TreeUpdate::Triad { persist_levels: n });
        exercise(&mut c);
        let (mut c, report) = recover(c.crash());
        assert!(
            report.is_complete(),
            "triad({n}): {:?}",
            report.unverifiable
        );
        for i in (0..c.layout().data_lines()).step_by(256) {
            assert_eq!(
                c.read(DataAddr::new(i)).unwrap(),
                [2u8; 64],
                "triad({n}) line {i}"
            );
        }
    }
}

#[test]
fn write_cost_orders_lazy_triad_eager() {
    // A cache-friendly hot set isolates the per-store persistence cost
    // (under thrashing, lazy degenerates to write-through and the
    // ordering blurs).
    let cost = |update| {
        let mut c = controller(update);
        for i in 0..600u64 {
            c.write(DataAddr::new(i % 3), &[i as u8; 64]).unwrap();
        }
        c.stats().nvm_writes
    };
    let lazy = cost(TreeUpdate::Lazy);
    let triad1 = cost(TreeUpdate::Triad { persist_levels: 1 });
    let triad2 = cost(TreeUpdate::Triad { persist_levels: 2 });
    let eager = cost(TreeUpdate::Eager);
    assert!(lazy < triad1, "lazy {lazy} < triad1 {triad1}");
    assert!(triad1 < triad2, "triad1 {triad1} < triad2 {triad2}");
    assert!(triad2 <= eager, "triad2 {triad2} <= eager {eager}");
}

#[test]
fn triad_shrinks_shadow_traffic() {
    // Strictly-persisted levels need no Anubis tracking.
    let shadow = |update| {
        let mut c = controller(update);
        exercise(&mut c);
        c.stats().writes.shadow
    };
    let lazy = shadow(TreeUpdate::Lazy);
    let triad = shadow(TreeUpdate::Triad { persist_levels: 1 });
    assert!(triad < lazy, "triad {triad} < lazy {lazy}");
    assert!(triad > 0, "upper levels still tracked");
}

#[test]
fn triad_recovery_needs_no_leaf_trials() {
    // Leaves are written through: their memory copies are never stale.
    let mut c = controller(TreeUpdate::Triad { persist_levels: 1 });
    exercise(&mut c);
    let (_, report) = recover(c.crash());
    assert!(report.is_complete());
    assert_eq!(
        report.counters_recovered, 0,
        "no Osiris trials needed: {report:?}"
    );
}
