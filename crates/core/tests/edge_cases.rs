//! Controller edge cases: WPQ forwarding, Osiris boundaries, page
//! re-encryption interacting with crashes and clones.

use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

fn controller(policy: CloningPolicy, osiris: u8) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 20)
        .metadata_cache(8 * 1024, 4)
        .cloning(policy)
        .osiris_limit(osiris)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

#[test]
fn read_sees_write_still_in_wpq() {
    // Write forwarding: a read issued before the WPQ drains must see the
    // newest data (the WPQ is the freshest copy).
    let mut c = controller(CloningPolicy::None, 4);
    c.write(DataAddr::new(0), &[0x11; 64]).unwrap();
    // No persist_all: the ciphertext may still sit in the 8-entry WPQ.
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), [0x11; 64]);
    c.write(DataAddr::new(0), &[0x22; 64]).unwrap();
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), [0x22; 64]);
}

#[test]
fn crash_immediately_after_page_reencryption() {
    // Drive one minor counter through its 7-bit overflow, which
    // re-encrypts the page, then crash without persisting.
    let mut c = controller(CloningPolicy::Relaxed, 200); // no Osiris writebacks
    let page: Vec<u64> = (0..64).collect();
    for &l in &page {
        c.write(DataAddr::new(l), &[l as u8; 64]).unwrap();
    }
    for i in 0..130u64 {
        c.write(DataAddr::new(0), &[i as u8; 64]).unwrap();
    }
    assert!(c.stats().page_reencryptions >= 1, "{:?}", c.stats());
    let (mut c, report) = recover(c.crash());
    assert!(report.is_complete(), "{:?}", report.unverifiable);
    assert_eq!(c.read(DataAddr::new(0)).unwrap(), [129u8; 64]);
    for &l in &page[1..] {
        assert_eq!(c.read(DataAddr::new(l)).unwrap(), [l as u8; 64], "line {l}");
    }
}

#[test]
fn osiris_limit_one_forces_writethrough() {
    // Limit 1: every counter update writes the leaf back immediately —
    // counters in NVM never lag, so recovery needs zero trials.
    let mut c = controller(CloningPolicy::None, 1);
    for i in 0..32u64 {
        c.write(DataAddr::new(i % 8), &[i as u8; 64]).unwrap();
    }
    assert_eq!(c.stats().osiris_writebacks, 32);
    let (_, report) = recover(c.crash());
    assert!(report.is_complete());
    assert_eq!(report.counters_recovered, 0, "{report:?}");
}

#[test]
fn osiris_limit_bounds_recovery_trials() {
    // With limit N, a counter can lag NVM by at most N; recovery must
    // find every one within its trial budget even at the boundary.
    for limit in [2u8, 4, 7] {
        let mut c = controller(CloningPolicy::None, limit);
        // Exactly `limit` updates after the last writeback (the first
        // write triggers the fetch; subsequent ones accumulate).
        for i in 0..limit as u64 {
            c.write(DataAddr::new(3), &[i as u8; 64]).unwrap();
        }
        let (mut c, report) = recover(c.crash());
        assert!(report.is_complete(), "limit {limit}: {:?}", report.unverifiable);
        assert_eq!(
            c.read(DataAddr::new(3)).unwrap(),
            [(limit - 1); 64],
            "limit {limit}"
        );
    }
}

#[test]
fn interleaved_reads_and_writes_stay_coherent() {
    let mut c = controller(CloningPolicy::Aggressive, 4);
    let mut model = std::collections::HashMap::new();
    let mut x: u64 = 0x9e37;
    for step in 0..3000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let line = (x >> 33) % 512;
        if step % 3 == 0 {
            let fill = (x >> 17) as u8;
            c.write(DataAddr::new(line), &[fill; 64]).unwrap();
            model.insert(line, fill);
        } else {
            let expect = model.get(&line).map(|&f| [f; 64]).unwrap_or([0u8; 64]);
            assert_eq!(c.read(DataAddr::new(line)).unwrap(), expect, "step {step}");
        }
    }
}

#[test]
fn full_capacity_boundaries() {
    let mut c = controller(CloningPolicy::None, 4);
    let last = c.layout().data_lines() - 1;
    c.write(DataAddr::new(last), &[0xee; 64]).unwrap();
    assert_eq!(c.read(DataAddr::new(last)).unwrap(), [0xee; 64]);
    assert!(c.write(DataAddr::new(last + 1), &[0; 64]).is_err());
}
