//! Recovery-time tests: Anubis shadow-guided recovery must touch orders
//! of magnitude less NVM than the exhaustive Osiris whole-memory scan —
//! the §2.6 motivation ("Anubis allows recovery ... within seconds" vs a
//! "time-consuming recovery process").

use soteria::clone::CloningPolicy;
use soteria::recovery::{recover, recover_exhaustive};
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};

/// Bulk state persisted cleanly, then a *shallow* dirty tail: only leaf
/// counters carry lost updates, which Osiris trials can recover without
/// any shadow help. (Deep dirty state is the case exhaustive recovery
/// cannot handle — see `exhaustive_cannot_recover_deep_dirty_state`.)
fn shallow_dirty_controller() -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 21) // 2 MiB
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::Relaxed)
        .build()
        .unwrap();
    let mut c = SecureMemoryController::new(config);
    for i in 0..256u64 {
        c.write(
            DataAddr::new(i * 113 % c.layout().data_lines()),
            &[i as u8; 64],
        )
        .unwrap();
    }
    c.persist_all().unwrap();
    for i in 0..8u64 {
        c.write(DataAddr::new(i), &[0xee; 64]).unwrap();
    }
    c
}

/// Deep dirty state: enough traffic that tree nodes at several levels
/// hold lost in-cache counter bumps at crash time.
fn deep_dirty_controller() -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(1 << 21)
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::Relaxed)
        .build()
        .unwrap();
    let mut c = SecureMemoryController::new(config);
    for round in 0..5u64 {
        for i in (0..c.layout().data_lines()).step_by(64) {
            c.write(DataAddr::new(i), &[round as u8; 64]).unwrap();
        }
    }
    c
}

#[test]
fn exhaustive_recovery_restores_shallow_state() {
    let c = shallow_dirty_controller();
    let (mut c, report) = recover_exhaustive(c.crash());
    assert!(report.is_complete(), "{:?}", report.unverifiable);
    assert!(
        report.counters_recovered > 0,
        "the dirty tail needed trials: {report:?}"
    );
    for i in 0..8u64 {
        assert_eq!(c.read(DataAddr::new(i)).unwrap(), [0xee; 64], "line {i}");
    }
}

#[test]
fn exhaustive_cannot_recover_deep_dirty_state_but_shadow_can() {
    // §2.6: ToC intermediate nodes cannot be rebuilt from below. A crash
    // with dirty tree nodes defeats the whole-memory scan; the Anubis
    // shadow table recovers everything.
    let shadow_report = recover(deep_dirty_controller().crash()).1;
    assert!(
        shadow_report.is_complete(),
        "{:?}",
        shadow_report.unverifiable
    );
    let exhaustive_report = recover_exhaustive(deep_dirty_controller().crash()).1;
    assert!(
        !exhaustive_report.is_complete(),
        "lost upper-level counter bumps must be unrecoverable without the shadow"
    );
}

#[test]
fn shadow_recovery_is_much_cheaper_than_exhaustive() {
    let shadow = {
        let c = shallow_dirty_controller();
        recover(c.crash()).1
    };
    let exhaustive = {
        let c = shallow_dirty_controller();
        recover_exhaustive(c.crash()).1
    };
    assert!(shadow.is_complete() && exhaustive.is_complete());
    // The shadow scan touches the shadow region + tracked blocks; the
    // exhaustive scan reads every counter block plus every written data
    // line + MAC.
    assert!(
        exhaustive.nvm_reads > 4 * shadow.nvm_reads,
        "exhaustive {} reads vs shadow {} reads",
        exhaustive.nvm_reads,
        shadow.nvm_reads
    );
    assert!(exhaustive.estimated_duration_ns() > shadow.estimated_duration_ns());
}

#[test]
fn recovery_cost_scales_with_tracked_state_not_capacity() {
    // Doubling capacity (with the same write activity) must not change
    // shadow-guided recovery cost much, while the exhaustive scan grows
    // with the counter-block population.
    let run = |capacity: u64| {
        let config = SecureMemoryConfig::builder()
            .capacity_bytes(capacity)
            .metadata_cache(8 * 1024, 4)
            .cloning(CloningPolicy::None)
            .build()
            .unwrap();
        let mut c = SecureMemoryController::new(config);
        for i in 0..64u64 {
            c.write(DataAddr::new(i), &[i as u8; 64]).unwrap();
        }
        let image = c.crash();
        let shadow_reads = {
            // Rebuild an identical controller for the second measurement.
            let config2 = SecureMemoryConfig::builder()
                .capacity_bytes(capacity)
                .metadata_cache(8 * 1024, 4)
                .cloning(CloningPolicy::None)
                .build()
                .unwrap();
            let mut c2 = SecureMemoryController::new(config2);
            for i in 0..64u64 {
                c2.write(DataAddr::new(i), &[i as u8; 64]).unwrap();
            }
            recover_exhaustive(c2.crash()).1.nvm_reads
        };
        (recover(image).1.nvm_reads, shadow_reads)
    };
    let (shadow_small, exhaustive_small) = run(1 << 20);
    let (shadow_large, exhaustive_large) = run(1 << 23);
    assert!(
        exhaustive_large > 2 * exhaustive_small,
        "exhaustive scan grows with capacity: {exhaustive_small} -> {exhaustive_large}"
    );
    let growth = shadow_large as f64 / shadow_small as f64;
    assert!(
        growth < 1.5,
        "shadow recovery should track dirty state, not capacity: {shadow_small} -> {shadow_large}"
    );
}

#[test]
fn report_estimates_duration() {
    let c = shallow_dirty_controller();
    let (_, report) = recover(c.crash());
    assert_eq!(
        report.estimated_duration_ns(),
        report.nvm_reads * 150 + report.nvm_writes * 300
    );
    assert!(report.estimated_duration_ns() > 0);
}
