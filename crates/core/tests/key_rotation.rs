//! Key-rotation tests (§2.7): after a counter-region reinitialization the
//! only safe option is re-encrypting the whole memory under a new key —
//! data must survive, old-key material must become useless, and the cost
//! must scale with capacity (the "can take hours" claim).

use soteria::clone::CloningPolicy;
use soteria::recovery::recover;
use soteria::{DataAddr, SecureMemoryConfig, SecureMemoryController};
use soteria_crypto::{EncryptionKey, MacKey};
use soteria_nvm::LineAddr;

fn controller(capacity: u64) -> SecureMemoryController {
    let config = SecureMemoryConfig::builder()
        .capacity_bytes(capacity)
        .metadata_cache(8 * 1024, 4)
        .cloning(CloningPolicy::Relaxed)
        .build()
        .unwrap();
    SecureMemoryController::new(config)
}

fn new_keys() -> (EncryptionKey, MacKey) {
    (
        EncryptionKey::from_bytes([0xaa; 16]),
        MacKey::from_bytes([0xbb; 32]),
    )
}

#[test]
fn data_survives_rotation() {
    let mut c = controller(1 << 20);
    for i in 0..64u64 {
        c.write(DataAddr::new(i * 97 % 1024), &[i as u8; 64])
            .unwrap();
    }
    let (enc, mac) = new_keys();
    let report = c.rotate_keys(enc, mac).unwrap();
    assert!(report.lines_reencrypted >= 60, "{report:?}"); // modulo collisions
    for i in 0..64u64 {
        assert_eq!(
            c.read(DataAddr::new(i * 97 % 1024)).unwrap(),
            [i as u8; 64],
            "line {i}"
        );
    }
    // Writes after rotation work under the new keys.
    c.write(DataAddr::new(5), &[0xfe; 64]).unwrap();
    assert_eq!(c.read(DataAddr::new(5)).unwrap(), [0xfe; 64]);
}

#[test]
fn ciphertext_changes_under_new_key() {
    let mut c = controller(1 << 20);
    c.write(DataAddr::new(0), &[0x42; 64]).unwrap();
    c.persist_all().unwrap();
    let (before, _) = c.device_mut().read_line(LineAddr::new(0));
    let (enc, mac) = new_keys();
    c.rotate_keys(enc, mac).unwrap();
    let (after, _) = c.device_mut().read_line(LineAddr::new(0));
    assert_ne!(before, after, "rotation must change the at-rest ciphertext");
    assert_ne!(after, [0x42; 64], "still no plaintext at rest");
}

#[test]
fn rotation_survives_crash_afterwards() {
    // The crash image after rotation must carry the new keys.
    let mut c = controller(1 << 20);
    c.write(DataAddr::new(7), &[7u8; 64]).unwrap();
    let (enc, mac) = new_keys();
    c.rotate_keys(enc, mac).unwrap();
    c.write(DataAddr::new(9), &[9u8; 64]).unwrap();
    let (mut c, report) = recover(c.crash());
    assert!(report.is_complete(), "{:?}", report.unverifiable);
    assert_eq!(c.read(DataAddr::new(7)).unwrap(), [7u8; 64]);
    assert_eq!(c.read(DataAddr::new(9)).unwrap(), [9u8; 64]);
}

#[test]
fn rotation_cost_scales_with_metadata_population() {
    // Even with the same written data, a larger memory pays for walking
    // and reinitializing its whole metadata region — the "hours" scaling.
    let cost = |capacity: u64| {
        let mut c = controller(capacity);
        for i in 0..16u64 {
            c.write(DataAddr::new(i), &[1u8; 64]).unwrap();
        }
        let (enc, mac) = new_keys();
        c.rotate_keys(enc, mac).unwrap().estimated_duration_ns()
    };
    let small = cost(1 << 20);
    let large = cost(1 << 23);
    assert!(large > 4 * small, "{small} -> {large}");
}

#[test]
fn rotation_resets_counters() {
    // Heavy pre-rotation traffic advances counters; rotation resets them,
    // and post-rotation traffic must still never reuse a pad.
    let mut c = controller(1 << 20);
    for _ in 0..50 {
        c.write(DataAddr::new(3), &[1u8; 64]).unwrap();
    }
    let (enc, mac) = new_keys();
    c.rotate_keys(enc, mac).unwrap();
    let mut seen = std::collections::HashSet::new();
    for i in 0..30u8 {
        c.write(DataAddr::new(3), &[i; 64]).unwrap();
        c.persist_all().unwrap();
        let (ct, _) = c.device_mut().read_line(LineAddr::new(3));
        assert!(seen.insert(ct.to_vec()), "pad reuse after rotation");
    }
}
